"""Differential test: CachedBackend vs a reference page-cache model.

A pure-Python LRU page cache (no simulation, no timing) replays the same
operation sequence and predicts hit/miss/eviction counts, the exact span
each read should charge to the inner backend, and write-through recency.
Hypothesis drives random op sequences through both and any divergence is
a bug in the accounting — this is the harness that pinned the partial-hit
and write-publish fixes.
"""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import CacheCompletion, CachedBackend
from repro.backends.base import StorageBackend
from repro.config import PlatformConfig
from repro.hw.platform import Platform

PAGE = 4096
BLOCK = 512
LBAS_PER_PAGE = PAGE // BLOCK


class SpyBackend(StorageBackend):
    """Inner backend that records every fetch and costs ~nothing."""

    model_name = "spdk"  # any name the throughput model knows

    def __init__(self, platform):
        super().__init__(platform)
        self.calls = []

    @property
    def name(self) -> str:
        return "spy"

    def io(self, lba, nbytes, is_write=False, payload=None, target=None,
           target_offset=0, ssd_index=None):
        self.calls.append((lba, nbytes, bool(is_write), target_offset))
        yield self.env.timeout(1e-9)
        return CacheCompletion(nbytes=nbytes, complete_time=self.env.now)


class ReferenceCache:
    """What CachedBackend *should* do, in arithmetic only."""

    def __init__(self, capacity_pages):
        self.capacity_pages = capacity_pages
        self.lru = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.fetches = []  # (lba, nbytes, target_offset) per inner read

    def _touch(self, page):
        self.lru[page] = None
        self.lru.move_to_end(page)
        while len(self.lru) > self.capacity_pages:
            self.lru.popitem(last=False)
            self.evictions += 1

    def pages_of(self, lba, nbytes):
        start = lba * BLOCK
        first = start // PAGE
        last = (start + max(1, nbytes) - 1) // PAGE
        return list(range(first, last + 1))

    def write(self, lba, nbytes):
        for page in self.pages_of(lba, nbytes):
            if page in self.lru:
                self._touch(page)

    def read(self, lba, nbytes):
        pages = self.pages_of(lba, nbytes)
        missing = [p for p in pages if p not in self.lru]
        self.hits += len(pages) - len(missing)
        self.misses += len(missing)
        if missing:
            start_byte = lba * BLOCK
            end_byte = start_byte + nbytes
            span_start = max(start_byte, missing[0] * PAGE)
            span_lba = span_start // BLOCK
            span_start = span_lba * BLOCK
            span_end = min(end_byte, (missing[-1] + 1) * PAGE)
            self.fetches.append(
                (span_lba, span_end - span_start, span_start - start_byte)
            )
        for page in pages:
            self._touch(page)


def _build(capacity_pages=8):
    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    spy = SpyBackend(platform)
    cached = CachedBackend(
        spy, capacity_bytes=capacity_pages * PAGE, page_bytes=PAGE,
        to_gpu=False,
    )
    return platform, spy, cached


def _replay(platform, cached, ops):
    def proc():
        for is_write, lba, nbytes in ops:
            yield from cached.io(lba, nbytes, is_write=is_write)

    platform.env.run(platform.env.process(proc()))


# ops: (is_write, lba, nbytes); lbas page-aligned or not, spans 1..6 pages
_op = st.tuples(
    st.booleans(),
    st.integers(min_value=0, max_value=24 * LBAS_PER_PAGE),
    st.integers(min_value=1, max_value=6 * PAGE),
)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=40),
       capacity=st.integers(min_value=1, max_value=12))
def test_cached_backend_matches_reference_model(ops, capacity):
    platform, spy, cached = _build(capacity)
    reference = ReferenceCache(capacity)

    _replay(platform, cached, ops)
    for is_write, lba, nbytes in ops:
        if is_write:
            reference.write(lba, nbytes)
        else:
            reference.read(lba, nbytes)

    assert cached.hits.total == reference.hits
    assert cached.misses.total == reference.misses
    assert cached.evictions.total == reference.evictions
    assert list(cached._lru) == list(reference.lru)
    reads = [(lba, nbytes, off) for lba, nbytes, w, off in spy.calls
             if not w]
    assert reads == reference.fetches


def test_partial_hit_regression_strided_read_over_half_resident_span():
    """Pin the partial-hit fix: pages 0-3 resident, then an 8-page read.

    Before the fix every page of a partially resident span was counted
    a miss and the whole span was refetched; now the resident half is
    per-page hits and only the missing 4-page window goes to the inner
    backend.
    """
    platform, spy, cached = _build(capacity_pages=16)

    def proc():
        # warm pages 0..3 one strided step at a time
        for page in range(4):
            yield from cached.io(page * LBAS_PER_PAGE, PAGE)
        spy.calls.clear()
        baseline_hits = cached.hits.total
        yield from cached.io(0, 8 * PAGE)
        return baseline_hits

    baseline_hits = platform.env.run(platform.env.process(proc()))
    assert cached.hits.total - baseline_hits == 4     # pages 0-3
    assert cached.misses.total == 4 + 4               # warmup + pages 4-7
    # exactly one fetch, covering only pages 4..7
    assert spy.calls == [(4 * LBAS_PER_PAGE, 4 * PAGE, False, 4 * PAGE)]


def test_interior_hit_is_refetched_within_one_span():
    """A resident page strictly inside the missing window is refetched
    (one contiguous inner request) but still counted as a hit."""
    platform, spy, cached = _build(capacity_pages=16)

    def proc():
        yield from cached.io(1 * LBAS_PER_PAGE, PAGE)  # page 1 resident
        spy.calls.clear()
        yield from cached.io(0, 3 * PAGE)              # pages 0..2

    platform.env.run(platform.env.process(proc()))
    assert cached.hits.total == 1
    assert cached.misses.total == 1 + 2
    assert spy.calls == [(0, 3 * PAGE, False, 0)]


def test_write_path_publishes_metrics():
    """Regression: writes used to skip _publish(), so cam_cache_* froze
    at the last read on write-heavy phases."""
    from repro.obs import install_metrics

    platform, spy, cached = _build()

    def warm():
        yield from cached.io(0, PAGE)              # miss, metrics off

    platform.env.run(platform.env.process(warm()))
    # metrics come up *after* the read: only the write's publish can
    # mirror the counters into the fresh registry
    metrics = install_metrics(platform.env)

    def proc():
        yield from cached.io(0, PAGE, is_write=True)

    platform.env.run(platform.env.process(proc()))
    snapshot = metrics.registry.snapshot()
    assert snapshot["cam_cache_misses_total"] == 1
    assert snapshot["cam_cache_hit_rate"] == 0.0


def test_write_through_refreshes_recency():
    """A write to a cached page must move it to MRU so it is not the
    next eviction victim."""
    platform, spy, cached = _build(capacity_pages=2)

    def proc():
        yield from cached.io(0, PAGE)                       # page 0
        yield from cached.io(LBAS_PER_PAGE, PAGE)           # page 1
        yield from cached.io(0, PAGE, is_write=True)        # refresh 0
        yield from cached.io(2 * LBAS_PER_PAGE, PAGE)       # evicts 1

    platform.env.run(platform.env.process(proc()))
    assert cached._cached(0)
    assert not cached._cached(1)


def test_full_hit_returns_typed_completion():
    platform, spy, cached = _build()

    def proc():
        yield from cached.io(0, PAGE)
        cqe = yield from cached.io(0, PAGE)
        return cqe

    cqe = platform.env.run(platform.env.process(proc()))
    assert isinstance(cqe, CacheCompletion)
    assert cqe.command_id is None
    assert cqe.source == "host-cache"
    assert cqe.pages == 1
