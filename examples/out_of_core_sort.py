"""Out-of-core mergesort on the simulated SSD array (paper Fig. 10a).

Two-phase sort of int32 data that does not fit in "GPU memory": block
sort (ModernGPU-style) then pairwise merging, with real data verified
sorted at the end.  Compares CAM, SPDK-with-overlap, and POSIX I/O.

Run:  python examples/out_of_core_sort.py
"""

from repro.units import KiB, MiB
from repro.workloads.sort import sort_with_backend


def main() -> None:
    num_elements = 1 << 20  # 4 MiB of int32
    print(f"sorting {num_elements:,} int32 values on 12 simulated SSDs\n")
    print(f"{'system':<8}{'total (ms)':>12}{'I/O (ms)':>10}"
          f"{'compute (ms)':>14}{'verified':>10}{'vs posix':>10}")
    results = {}
    for name in ("cam", "spdk", "posix"):
        results[name] = sort_with_backend(
            name,
            num_elements=num_elements,
            chunk_bytes=MiB,
            granularity=512 * KiB,
        )
    posix_time = results["posix"].total_time
    for name, outcome in results.items():
        print(
            f"{name:<8}{outcome.total_time * 1e3:>12.2f}"
            f"{outcome.io_time * 1e3:>10.2f}"
            f"{outcome.compute_time * 1e3:>14.2f}"
            f"{'yes' if outcome.verified else 'NO':>10}"
            f"{posix_time / outcome.total_time:>9.2f}x"
        )
    print("\nCAM and SPDK overlap chunk I/O with sorting/merging;"
          "\nPOSIX pays the OS-kernel request path and runs serially.")


if __name__ == "__main__":
    main()
