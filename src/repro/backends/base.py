"""Backend ABC + the closed-loop load generator.

A backend couples a control plane (who builds and polls NVMe commands) to
a data path (where the bytes land).  Two speeds of use:

* :meth:`StorageBackend.io` — one simulated request through the full
  discrete-event path;
* :meth:`StorageBackend.bulk_io` — a batch accounted with the analytic
  steady-state model (same constants), for paper-scale workloads where
  per-request simulation would take millions of events.

:func:`measure_throughput` drives a backend with a fixed-concurrency
closed loop (fio semantics: ``numjobs``/``iodepth``) and reports achieved
bytes/second — the primitive behind Figs. 2, 8, 11 and 12.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.errors import ConfigurationError, DeviceTimeoutError
from repro.hw.platform import Platform
from repro.model.throughput import ThroughputModel


class StorageBackend:
    """Base class; concrete planes live in :mod:`repro.backends.planes`."""

    #: name understood by :class:`~repro.model.throughput.ThroughputModel`
    model_name = ""

    #: True when :meth:`io` accepts a ``trace_ctx`` keyword (a
    #: :class:`~repro.obs.causal.RequestContext`) for causal request
    #: tracing; callers probe this before threading the context through
    accepts_trace_ctx = False

    def __init__(self, platform: Platform, reliability=None):
        self.platform = platform
        self.env = platform.env
        self.model = ThroughputModel(platform.config)
        #: optional :class:`~repro.reliability.Reliability` bundle; the
        #: control planes that own drivers (spdk/cam/kernel) wire it
        #: there, the simpler planes (bam/gds) use :meth:`_reliable_io`
        self.reliability = reliability

    @property
    def name(self) -> str:
        return self.model_name

    # -- shared reliability plumbing ---------------------------------------
    def _resolve_ssd(self, lba: int, ssd_index: Optional[int]):
        """(ssd_id, local_lba) a request will land on, mirroring the
        drivers' own striping — needed to key retries and health."""
        if ssd_index is not None:
            return ssd_index, lba
        ssd, local_lba = self.platform.ssd_for_lba(lba)
        return ssd.ssd_id, local_lba

    def _reliable_io(
        self,
        factory,
        *,
        ssd_id: int,
        lba: int,
        nbytes: int,
        is_write: bool,
    ) -> Generator:
        """Process: drive ``factory()`` (one full inner attempt) under
        :attr:`reliability` — retry loop plus a watchdog guard around the
        whole attempt, so a swallowed command surfaces as a typed
        timeout instead of a hang."""

        def attempt():
            return self._guarded_attempt(factory, nbytes, ssd_id)

        try:
            cqe = yield from self.reliability.run(
                attempt, ssd_id=ssd_id, lba=lba, is_write=is_write
            )
        except DeviceTimeoutError:
            self.reliability.health.mark_offline(ssd_id)
            raise
        return cqe

    def _guarded_attempt(self, factory, nbytes: int, ssd_id: int) -> Generator:
        watchdog = self.reliability.watchdog
        if watchdog is None:
            cqe = yield from factory()
            return cqe
        # guard the attempt as a process: a hung inner wait is abandoned
        # (simulation-only leak) and the caller gets the typed error
        child = self.env.process(factory())
        cqe = yield from watchdog.guard(
            child,
            nbytes=nbytes,
            ssd_ids=(ssd_id,),
            fault_injector=self.platform.fault_injector,
            description=f"{self.model_name or 'backend'} ssd {ssd_id}",
        )
        return cqe

    # -- per-request DES path ------------------------------------------------
    def io(
        self,
        lba: int,
        nbytes: int,
        is_write: bool = False,
        payload=None,
        target=None,
        target_offset: int = 0,
        ssd_index: Optional[int] = None,
    ) -> Generator:
        """Process: one request through the control + data planes."""
        raise NotImplementedError

    # -- analytic bulk path -----------------------------------------------
    def bulk_time(
        self,
        total_bytes: float,
        granularity: int = 4096,
        is_write: bool = False,
        **kwargs,
    ) -> float:
        """Steady-state seconds to move ``total_bytes``."""
        return self.model.io_time(
            self.model_name, total_bytes, granularity, is_write, **kwargs
        )

    def bulk_io(
        self,
        total_bytes: float,
        granularity: int = 4096,
        is_write: bool = False,
        **kwargs,
    ) -> Generator:
        """Process: advance simulated time by the analytic batch duration."""
        duration = self.bulk_time(total_bytes, granularity, is_write, **kwargs)
        yield self.env.timeout(duration)
        return duration


def make_backend(name: str, platform: Platform, **kwargs) -> StorageBackend:
    """Construct a backend by model name (see
    :data:`repro.model.throughput.BACKENDS`)."""
    from repro.backends.planes import (
        BamBackend,
        CamBackend,
        GdsBackend,
        KernelBackend,
        SpdkBackend,
    )

    factories = {
        "posix": lambda: KernelBackend(platform, "posix", **kwargs),
        "libaio": lambda: KernelBackend(platform, "libaio", **kwargs),
        "io_uring int": lambda: KernelBackend(
            platform, "io_uring int", **kwargs
        ),
        "io_uring poll": lambda: KernelBackend(
            platform, "io_uring poll", **kwargs
        ),
        "spdk": lambda: SpdkBackend(platform, **kwargs),
        "bam": lambda: BamBackend(platform, **kwargs),
        "gds": lambda: GdsBackend(platform, **kwargs),
        "cam": lambda: CamBackend(platform, **kwargs),
    }
    if name not in factories:
        raise ConfigurationError(
            f"unknown backend {name!r}; choose from {sorted(factories)}"
        )
    return factories[name]()


def measure_throughput(
    backend: StorageBackend,
    granularity: int = 4096,
    is_write: bool = False,
    total_requests: int = 2000,
    concurrency: int = 64,
    seed: int = 7,
    spread_blocks: int = 1 << 20,
) -> float:
    """Closed-loop load test; returns achieved payload bytes/second.

    ``concurrency`` logical workers each keep one request outstanding
    (fio ``iodepth``); requests target uniformly random, granularity-
    aligned LBAs within ``spread_blocks`` so every SSD of the platform
    sees traffic.
    """
    if total_requests < 1 or concurrency < 1:
        raise ConfigurationError("requests and concurrency must be >= 1")
    env = backend.env
    rng = np.random.default_rng(seed)
    block_size = backend.platform.config.ssd.block_size
    blocks_per_request = max(1, granularity // block_size)
    # align the RAID0 stripe to the request size so every request maps to
    # exactly one SSD and traffic spreads over the whole array
    backend.platform.stripe_blocks = blocks_per_request
    slots = max(1, spread_blocks // blocks_per_request)
    lbas = rng.integers(0, slots, size=total_requests) * blocks_per_request

    shared = {"next": 0}
    start = env.now

    def worker() -> Generator:
        while shared["next"] < total_requests:
            index = shared["next"]
            shared["next"] += 1
            yield from backend.io(
                int(lbas[index]), granularity, is_write=is_write
            )

    workers = [
        env.process(worker()) for _ in range(min(concurrency, total_requests))
    ]
    env.run(env.all_of(workers))
    elapsed = env.now - start
    if elapsed <= 0:
        raise ConfigurationError("measurement window collapsed to zero")
    return total_requests * granularity / elapsed
