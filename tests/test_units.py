"""Unit tests for unit helpers."""

import pytest

from repro.units import (
    GB,
    GiB,
    KiB,
    MS,
    US,
    gb_per_s,
    mb_per_s,
    pretty_bytes,
    pretty_time,
    to_gb_per_s,
    to_miops,
)


def test_binary_sizes():
    assert KiB == 1024
    assert GiB == 1024 ** 3


def test_bandwidth_roundtrip():
    assert to_gb_per_s(gb_per_s(21.0)) == pytest.approx(21.0)
    assert mb_per_s(1000) == gb_per_s(1.0)


def test_to_miops():
    assert to_miops(700_000) == pytest.approx(0.7)


def test_pretty_bytes():
    assert pretty_bytes(512) == "512B"
    assert pretty_bytes(4096) == "4.0KiB"
    assert pretty_bytes(128 * KiB) == "128.0KiB"
    assert pretty_bytes(3 * GiB) == "3.0GiB"


def test_pretty_time():
    assert pretty_time(1.5) == "1.500s"
    assert pretty_time(2 * MS) == "2.000ms"
    assert pretty_time(15 * US) == "15.000us"
    assert pretty_time(5e-9) == "5.0ns"
