"""CPU model: cores, worker threads, and instruction/cycle accounting.

The control planes differ in where their CPU time goes:

* kernel stacks burn instructions in the file system / io_map / block I/O
  layers at poor IPC (cache-missing kernel paths);
* SPDK/CAM burn most instructions in cache-resident polling loops at high
  IPC, which is why Fig. 13 shows them using *slightly* fewer instructions
  but *far* fewer cycles than libaio.

:class:`CycleAccountant` implements that model; :class:`CPU` provides the
core pool that managers/reactors/pollers occupy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.config import CPUConfig
from repro.errors import SimulationError
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.sim.stats import TimeWeightedStat


@dataclass
class CostSample:
    """Accumulated instruction/cycle counts for one category of work."""

    instructions: float = 0.0
    cycles: float = 0.0

    def add(self, instructions: float, ipc: float) -> None:
        if ipc <= 0:
            raise SimulationError(f"IPC must be positive, got {ipc}")
        self.instructions += instructions
        self.cycles += instructions / ipc


@dataclass
class CycleAccountant:
    """Per-request instruction and cycle bookkeeping, split by category.

    Categories used by the experiments: ``submit`` (building SQEs/syscalls),
    ``poll`` (completion polling loops), ``kernel`` (OS kernel layers),
    ``interrupt`` (IRQ + wakeup paths).
    """

    samples: Dict[str, CostSample] = field(default_factory=dict)
    requests: int = 0

    def charge(self, category: str, instructions: float, ipc: float) -> None:
        self.samples.setdefault(category, CostSample()).add(instructions, ipc)

    def complete_request(self, count: int = 1) -> None:
        self.requests += count

    @property
    def total_instructions(self) -> float:
        return sum(s.instructions for s in self.samples.values())

    @property
    def total_cycles(self) -> float:
        return sum(s.cycles for s in self.samples.values())

    def instructions_per_request(self) -> float:
        return self.total_instructions / self.requests if self.requests else 0.0

    def cycles_per_request(self) -> float:
        return self.total_cycles / self.requests if self.requests else 0.0

    def breakdown(self) -> Dict[str, float]:
        """Fraction of cycles per category."""
        total = self.total_cycles
        if not total:
            return {}
        return {
            name: sample.cycles / total
            for name, sample in self.samples.items()
        }


class CPU:
    """Core pool with occupancy tracking.

    Long-running actors (SPDK reactors, CAM management threads, OS worker
    threads) hold a core for their lifetime; the ``busy`` statistic exposes
    how many cores the storage stack steals from the application — the cost
    CAM's dynamic core adjustment (Section III-A) minimizes.
    """

    def __init__(self, env: Environment, config: CPUConfig):
        self.env = env
        self.config = config
        self._cores = Resource(env, capacity=config.cores)
        self.busy = TimeWeightedStat(env)

    @property
    def cores_available(self) -> int:
        return self.config.cores - self._cores.count

    @property
    def cores_in_use(self) -> int:
        return self._cores.count

    def acquire_core(self):
        """Request event for one core; track occupancy on grant."""
        request = self._cores.request()
        if request.callbacks is None:
            # granted on the spot (free core): count it busy now
            self.busy.add(1)
        else:
            request.callbacks.append(lambda _event: self.busy.add(1))
        return request

    def release_core(self, request) -> None:
        self._cores.release(request)
        self.busy.add(-1)

    def mean_cores_busy(self) -> float:
        return self.busy.mean()

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.config.frequency_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.config.frequency_hz
