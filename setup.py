"""Legacy setup shim.

Kept alongside pyproject.toml so ``pip install -e .`` works in offline
environments whose setuptools lacks the PEP 660 editable-wheel path.
"""

from setuptools import setup

setup()
