"""Benchmark: regenerate Fig. 8 (I/O throughput, four panels)."""


def test_fig08_throughput(check):
    def verify(result):
        table = result.table(
            "random read, 4 KiB, vs SSD count (GB/s, model)"
        )
        final = dict(zip(table.columns, table.rows[-1]))
        assert final["cam"] > 18 and final["posix"] < 3

    check("fig08", verify)
