"""Golden-number regression tests.

These lock the calibration: if a refactor shifts any headline figure away
from the paper-anchored values recorded in EXPERIMENTS.md, a test here
fails before the drift reaches the documentation.  Bounds are tight
around the *current* model outputs (not just the paper's qualitative
bands), so any change to the constants in ``repro/config.py`` is an
intentional, test-visible act.
"""

import pytest

from repro.config import PlatformConfig
from repro.model.throughput import ThroughputModel, device_iops
from repro.units import KiB, MiB

MODEL = ThroughputModel(PlatformConfig())
GB = 1e9


def test_golden_ssd_anchors():
    ssd = PlatformConfig().ssd
    assert device_iops(ssd, 4 * KiB, False) * 4 * KiB == pytest.approx(
        2.613 * GB, rel=0.01
    )
    assert device_iops(ssd, 4 * KiB, True) * 4 * KiB == pytest.approx(
        0.647 * GB, rel=0.01
    )
    assert device_iops(ssd, MiB, False) * MiB == pytest.approx(
        6.46 * GB, rel=0.01
    )


def test_golden_headline_20gbps():
    assert MODEL.throughput("cam", 4 * KiB, False, cores=12) == (
        pytest.approx(19.0 * GB, rel=0.01)
    )
    assert MODEL.throughput("spdk", 4 * KiB, False) == pytest.approx(
        19.0 * GB, rel=0.01
    )
    assert MODEL.throughput("bam", 4 * KiB, False) == pytest.approx(
        19.0 * GB, rel=0.01
    )


def test_golden_kernel_stack_points():
    expectations = {
        ("posix", False): 0.480,
        ("libaio", False): 0.792,
        ("io_uring int", False): 0.881,
        ("io_uring poll", False): 0.993,
        ("posix", True): 0.139,
        ("libaio", True): 0.538,
    }
    for (stack, is_write), value in expectations.items():
        got = MODEL.throughput(stack, 4 * KiB, is_write, num_ssds=1,
                               to_gpu=False)
        assert got == pytest.approx(value * GB, rel=0.01), (stack, is_write)


def test_golden_fig12_fractions():
    full = MODEL.throughput("cam", 4 * KiB, False, cores=12)
    assert MODEL.throughput("cam", 4 * KiB, False, cores=3) / full == (
        pytest.approx(0.719, abs=0.01)
    )
    assert MODEL.throughput("cam", 4 * KiB, False, cores=1) / full == (
        pytest.approx(0.240, abs=0.01)
    )


def test_golden_fig16_collapse_point():
    spdk = MODEL.throughput("spdk", 4 * KiB, False, contiguous_dest=False)
    assert spdk == pytest.approx(1.282 * GB, rel=0.01)  # paper: 1.3


def test_golden_fig15_two_channel_limit():
    assert MODEL.throughput("spdk", 128 * KiB, False, dram_channels=2) == (
        pytest.approx(10.0 * GB, rel=0.01)
    )


def test_golden_gds_level():
    assert MODEL.throughput("gds", 128 * KiB, False) == pytest.approx(
        0.874 * GB, rel=0.01
    )


def test_golden_bam_sm_requirements():
    from repro.bam.system import BamSystem
    from repro.hw.platform import Platform

    platform = Platform(PlatformConfig(num_ssds=12), functional=False)
    system = BamSystem(platform)
    assert system.sms_to_saturate(1) == 16
    assert system.sms_to_saturate(5) == 78
    assert system.sms_to_saturate(8) == 108


def test_golden_cpu_cost_per_request():
    from repro.backends import make_backend, measure_throughput
    from repro.hw.platform import Platform

    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    backend = make_backend("cam", platform)
    measure_throughput(backend, 4096, total_requests=100, concurrency=32)
    reactor = backend.manager.driver.pool.reactors[0]
    assert reactor.accountant.instructions_per_request() == pytest.approx(
        510.0, rel=0.01
    )
    assert reactor.accountant.cycles_per_request() == pytest.approx(
        221.2, rel=0.01
    )
