"""Benchmark: regenerate Fig. 15 (memory-channel-limited throughput)."""


def test_fig15_membw_limit(check):
    def verify(result):
        read = result.table("random read (GB/s)")
        rows = {row[0]: row for row in read.rows}
        assert rows["cam"][3] == rows["cam"][4]  # DES: 2c == 16c

    check("fig15", verify)
