"""K-hop random neighbor sampling (paper Table V: 2 hops, fan-outs 25, 10).

Sampling runs for real over the CSR structure — the resulting *unique
node count* per batch is the quantity that sets feature-extraction I/O
volume, and it depends on graph shape (hub-heavy graphs dedup more), so
it must be measured, not guessed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.gnn.graph import CSRGraph


@dataclass
class BatchStats:
    """Everything downstream stages need to know about one sampled batch."""

    seed_nodes: np.ndarray
    #: frontier size after each hop (excluding seeds)
    layer_nodes: List[int] = field(default_factory=list)
    #: edges sampled at each hop
    layer_edges: List[int] = field(default_factory=list)
    #: all distinct nodes touched (seeds + all hops) — the feature fetch set
    unique_nodes: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def num_unique(self) -> int:
        return len(self.unique_nodes)

    @property
    def total_edges(self) -> int:
        return int(sum(self.layer_edges))


class NeighborSampler:
    """Uniform random neighbor sampling with per-hop fan-outs."""

    def __init__(
        self,
        graph: CSRGraph,
        fanouts: Sequence[int] = (25, 10),
        seed: int = 0,
    ):
        if not fanouts or any(f < 1 for f in fanouts):
            raise ConfigurationError("fanouts must be positive")
        self.graph = graph
        self.fanouts = tuple(int(f) for f in fanouts)
        self.rng = np.random.default_rng(seed)

    def _sample_hop(self, frontier: np.ndarray, fanout: int) -> np.ndarray:
        """Sample up to ``fanout`` neighbors of every frontier node."""
        graph = self.graph
        starts = graph.indptr[frontier]
        degrees = graph.indptr[frontier + 1] - starts
        live = degrees > 0
        if not live.any():
            return np.empty(0, dtype=np.int64)
        starts = starts[live]
        degrees = degrees[live]
        # with-replacement uniform choice: fanout draws per live node
        draws = self.rng.random((len(starts), fanout))
        offsets = (draws * degrees[:, None]).astype(np.int64)
        return graph.indices[(starts[:, None] + offsets).ravel()]

    def sample(self, seed_nodes: np.ndarray) -> BatchStats:
        """Sample the k-hop neighborhood of ``seed_nodes``."""
        seed_nodes = np.asarray(seed_nodes, dtype=np.int64)
        if seed_nodes.ndim != 1 or len(seed_nodes) == 0:
            raise ConfigurationError("seed_nodes must be non-empty 1-D")
        if seed_nodes.min() < 0 or seed_nodes.max() >= self.graph.num_nodes:
            raise ConfigurationError("seed node out of range")
        stats = BatchStats(seed_nodes=seed_nodes)
        touched = [seed_nodes]
        frontier = seed_nodes
        for fanout in self.fanouts:
            neighbors = self._sample_hop(frontier, fanout)
            stats.layer_edges.append(len(neighbors))
            frontier = np.unique(neighbors)
            stats.layer_nodes.append(len(frontier))
            touched.append(frontier)
        stats.unique_nodes = np.unique(np.concatenate(touched))
        return stats

    def epoch_batches(
        self, train_nodes: np.ndarray, batch_size: int
    ):
        """Yield shuffled seed batches covering the training split."""
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        order = self.rng.permutation(train_nodes)
        for start in range(0, len(order), batch_size):
            batch = order[start : start + batch_size]
            if len(batch):
                yield batch
