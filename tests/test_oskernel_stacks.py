"""Tests for the kernel I/O stacks: Fig. 2 ordering and Fig. 3 breakdown."""

import pytest

from repro.backends import make_backend, measure_throughput
from repro.config import PlatformConfig
from repro.hw.platform import Platform
from repro.model.throughput import ThroughputModel, device_iops
from repro.oskernel.stacks import LayerBreakdown
from repro.errors import SimulationError


def _measure(stack_name, is_write=False, requests=300):
    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    backend = make_backend(stack_name, platform)
    throughput = measure_throughput(
        backend,
        granularity=4096,
        is_write=is_write,
        total_requests=requests,
        concurrency=backend.concurrency,
    )
    return throughput, backend.stack


def test_fig2_read_ordering():
    """POSIX < libaio < io_uring int < io_uring poll < SSD max."""
    values = {}
    for name in ("posix", "libaio", "io_uring int", "io_uring poll"):
        values[name], _ = _measure(name)
    assert values["posix"] < values["libaio"]
    assert values["libaio"] < values["io_uring int"]
    assert values["io_uring int"] < values["io_uring poll"]
    ssd_max = device_iops(PlatformConfig().ssd, 4096, False) * 4096
    assert values["io_uring poll"] < 0.6 * ssd_max  # "far below"


def test_fig2_write_ordering():
    values = {}
    for name in ("posix", "libaio", "io_uring poll"):
        values[name], _ = _measure(name, is_write=True, requests=200)
    assert values["posix"] < values["libaio"] <= values["io_uring poll"]
    ssd_max = device_iops(PlatformConfig().ssd, 4096, True) * 4096
    assert values["io_uring poll"] <= ssd_max * 1.01


def test_write_slower_than_read_per_stack():
    for name in ("posix", "libaio"):
        read, _ = _measure(name, is_write=False, requests=200)
        write, _ = _measure(name, is_write=True, requests=200)
        assert write < read


def test_fig3_kernel_overhead_exceeds_34_percent():
    """The paper's >34% fs+iomap claim holds for every stack."""
    for name in ("posix", "libaio", "io_uring int", "io_uring poll"):
        _, stack = _measure(name, requests=150)
        assert stack.breakdown.kernel_overhead_fraction() > 0.34, name


def test_breakdown_fractions_sum_to_one():
    _, stack = _measure("posix", requests=100)
    assert sum(stack.breakdown.fractions().values()) == pytest.approx(1.0)


def test_layer_breakdown_rejects_unknown_layer():
    breakdown = LayerBreakdown()
    with pytest.raises(SimulationError):
        breakdown.charge("turbo", 1.0)


def test_breakdown_empty_is_zero():
    breakdown = LayerBreakdown()
    assert breakdown.kernel_overhead_fraction() == 0.0


def test_des_matches_model_for_kernel_stacks():
    """The per-request simulation and the closed-form model agree."""
    model = ThroughputModel(PlatformConfig(num_ssds=1))
    for name in ("libaio", "io_uring poll"):
        measured, _ = _measure(name, requests=400)
        predicted = model.throughput(name, 4096, False, num_ssds=1,
                                     to_gpu=False)
        assert measured == pytest.approx(predicted, rel=0.1), name


def test_posix_threads_scale_throughput():
    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    two = make_backend("posix", platform, threads=2)
    low = measure_throughput(two, 4096, total_requests=200, concurrency=2)
    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    eight = make_backend("posix", platform, threads=8)
    high = measure_throughput(eight, 4096, total_requests=400, concurrency=8)
    assert high > 2.5 * low


def test_functional_read_lands_in_host_buffer():
    import numpy as np

    from repro.hw.buffers import HostBuffer
    from repro.workloads.vdisk import VirtualDisk

    platform = Platform(PlatformConfig(num_ssds=1))
    vdisk = VirtualDisk(platform)
    payload = np.arange(4096, dtype=np.uint8) % 199
    vdisk.write_direct(0, payload)
    backend = make_backend("posix", platform)
    target = HostBuffer(4096)

    def proc():
        yield from backend.io(0, 4096, target=target)

    platform.env.run(platform.env.process(proc()))
    assert np.array_equal(target.read_bytes(0, 4096), payload)
