"""Application workloads: the paper's three evaluation applications.

* :mod:`repro.workloads.gnn` — out-of-core GNN training (GCN / GAT /
  GraphSAGE on Paper100M- and IGB-Full-shaped datasets), Figs. 1 and 9;
* :mod:`repro.workloads.sort` — two-phase out-of-core mergesort built on
  ModernGPU-style block sorting, Figs. 10a and 11;
* :mod:`repro.workloads.gemm` — tiled out-of-core GEMM, Figs. 10b/10c;
* :mod:`repro.workloads.vdisk` — the striped virtual disk the functional
  workloads stage their data on;
* :mod:`repro.workloads.microbench` — random-I/O sweeps behind the
  throughput figures.
"""

from repro.workloads.vdisk import VirtualDisk

__all__ = ["VirtualDisk"]
