"""Benchmark: regenerate Fig. 11 (sync vs async APIs)."""


def test_fig11_sync_vs_async(check):
    def verify(result):
        for row in result.tables[0].rows:
            _, sync, raw, spdk = row
            assert abs(sync - raw) / raw < 0.25

    check("fig11", verify)
