"""Serving study: TTFT and tokens/s over an SSD-backed KV cache.

``run_serving`` sweeps concurrent session counts (10^2 -> 10^4 in full
mode) over CAM, BaM and GDS with a *fixed* KV residency budget, so
memory pressure — and with it the share of turns that must prefetch
evicted KV blocks from SSD — grows with the session count.  The paper's
asynchronous-API argument transfers directly: CAM overlaps the KV
prefetch with prefill compute and the write-back of fresh blocks with
decode compute, while the synchronous paths pay those transfers on the
TTFT critical path.

A second panel compares eviction policies on CAM: plain LRU against the
prefix-aware sliding window (StreamingLLM-style), which both shrinks the
per-turn prefetch set and steers eviction at dead-weight blocks.

``serve_once`` is the single entry point every harness uses (this
experiment, ``benchmarks/perf/run_bench.py``, the tests), so the
configuration under measurement is defined exactly once.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.backends.base import make_backend
from repro.config import PlatformConfig
from repro.experiments.report import ExperimentResult, Table
from repro.hw.platform import Platform
from repro.serving import (
    KvBlockStore,
    KvLayout,
    ServingEngine,
    ServingResult,
    SessionConfig,
    SessionPool,
    SlidingWindowPolicy,
)

#: the canonical serving scenario (docs/SERVING.md documents the why)
NUM_SSDS = 12
CAPACITY_BLOCKS = 512
MAX_CONCURRENT_DECODES = 64
SESSION_KWARGS = dict(
    seed=17,
    mean_think_s=20e-3,
    turns_min=2,
    turns_max=4,
)


def serve_once(
    backend_name: str,
    num_sessions: int,
    policy: Optional[object] = None,
    metrics: bool = False,
    capacity_blocks: int = CAPACITY_BLOCKS,
    reliability: bool = False,
    gpu_cache_blocks: int = 0,
    readahead: bool = True,
) -> Tuple[ServingResult, float]:
    """One serving run; returns ``(result, sim_end)``.

    ``sim_end`` is the environment clock after the run — the value the
    bench harness compares across metrics-on/off runs for bit identity.
    ``reliability`` attaches the full PR-4 bundle (retries, breakers,
    watchdogs) to the backend.  ``gpu_cache_blocks`` > 0 puts a
    GPU-memory cache tier (lines sized to the KV block) in front of the
    storage path; ``readahead`` toggles its prefetcher.  The default
    (``0``) keeps the engine's event sequence bit-identical to pre-cache
    builds.
    """
    platform = Platform(
        PlatformConfig(num_ssds=NUM_SSDS), functional=False
    )
    if metrics:
        from repro.obs import install_metrics

        install_metrics(platform.env)
    backend_kwargs = {}
    if reliability:
        from repro.reliability import Reliability

        backend_kwargs["reliability"] = Reliability(platform)
    backend = make_backend(backend_name, platform, **backend_kwargs)
    layout = KvLayout()
    store = KvBlockStore(
        platform, layout, capacity_blocks=capacity_blocks,
        policy=policy,
    )
    pool = SessionPool(
        SessionConfig(num_sessions=num_sessions, **SESSION_KWARGS)
    )
    gpu_cache = None
    if gpu_cache_blocks:
        from repro.cache import GpuCache

        gpu_cache = GpuCache(
            platform,
            capacity_bytes=gpu_cache_blocks * layout.block_bytes,
            line_bytes=layout.block_bytes,
            readahead=readahead,
        )
    engine = ServingEngine(
        platform, backend, store, pool,
        max_concurrent_decodes=MAX_CONCURRENT_DECODES,
        gpu_cache=gpu_cache,
    )
    result = engine.run()
    return result, platform.env.now


def run_serving(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="serving",
        title="LLM serving over SSD-backed KV cache: TTFT and tokens/s",
        paper_expectation=(
            "CAM's asynchronous batched API overlaps KV prefetch with "
            "prefill and write-back with decode, so its TTFT tail "
            "stays flat as concurrent sessions (and KV memory "
            "pressure) grow; synchronous BaM-style access pays the "
            "transfers on the critical path and GDS collapses under "
            "its CPU-mediated control plane"
        ),
    )
    session_counts = (100, 250, 500) if quick else (100, 1000, 10000)
    sweep = result.add_table(
        Table(
            "TTFT / throughput vs concurrent sessions (fixed KV budget)",
            ["system", "sessions", "ttft_p50_ms", "ttft_p99_ms",
             "tokens_per_s", "kv_hit_rate", "kv_evictions"],
        )
    )
    for num_sessions in session_counts:
        for name in ("cam", "bam", "gds"):
            run, _ = serve_once(name, num_sessions)
            sweep.add_row(
                name,
                num_sessions,
                run.ttft_p50 * 1e3,
                run.ttft_p99 * 1e3,
                run.tokens_per_s,
                run.kv_hit_rate,
                run.kv_evictions,
            )

    policy_sessions = session_counts[1]
    policies = result.add_table(
        Table(
            f"eviction policy on cam ({policy_sessions} sessions)",
            ["policy", "ttft_p50_ms", "ttft_p99_ms", "tokens_per_s",
             "kv_hit_rate", "kv_evictions"],
        )
    )
    for policy in (None, SlidingWindowPolicy(window_blocks=2,
                                             prefix_blocks=1)):
        run, _ = serve_once("cam", policy_sessions, policy=policy)
        policies.add_row(
            run.policy,
            run.ttft_p50 * 1e3,
            run.ttft_p99 * 1e3,
            run.tokens_per_s,
            run.kv_hit_rate,
            run.kv_evictions,
        )

    top = session_counts[-1]
    cam_p99 = next(
        row[3] for row in sweep.rows
        if row[0] == "cam" and row[1] == top
    )
    bam_p99 = next(
        row[3] for row in sweep.rows
        if row[0] == "bam" and row[1] == top
    )
    result.note(
        f"at {top} sessions CAM TTFT p99 = {cam_p99:.2f} ms vs "
        f"BaM {bam_p99:.2f} ms "
        f"({'pass' if cam_p99 < bam_p99 else 'FAIL'}: async overlap "
        f"keeps the tail off the I/O critical path)"
    )
    result.note(
        "the sliding-window policy prefetches only prefix+window "
        "blocks per turn and evicts dead-weight blocks first, trading "
        "attention coverage for hit rate"
    )
    return result


run = run_serving
