"""Tests for the analytic throughput model — the paper's shapes in
closed form."""

import pytest

from repro.config import PlatformConfig
from repro.errors import ConfigurationError
from repro.model.throughput import (
    BACKENDS,
    ThroughputModel,
    device_iops,
    pcie_payload_bandwidth,
)
from repro.units import KiB, MiB, gb_per_s

MODEL = ThroughputModel(PlatformConfig())


def test_device_iops_calibration():
    ssd = PlatformConfig().ssd
    read = device_iops(ssd, 4 * KiB, False)
    write = device_iops(ssd, 4 * KiB, True)
    assert 550_000 < read <= 700_000
    assert 130_000 < write <= 170_000


def test_device_bandwidth_approaches_sequential():
    ssd = PlatformConfig().ssd
    big = device_iops(ssd, MiB, False) * MiB
    assert big == pytest.approx(gb_per_s(6.5), rel=0.15)


def test_device_iops_rejects_bad_granularity():
    with pytest.raises(ConfigurationError):
        device_iops(PlatformConfig().ssd, 0, False)


def test_pcie_payload_bandwidth_shape():
    config = PlatformConfig()
    small = pcie_payload_bandwidth(config, 512)
    large = pcie_payload_bandwidth(config, MiB)
    assert small < large < config.pcie.bandwidth


def test_headline_20gb_point():
    """12 SSDs at 4 KiB: ~20 GB/s for the kernel-bypass planes."""
    for name in ("cam", "spdk", "bam"):
        value = MODEL.throughput(name, 4 * KiB, False,
                                 cores=12 if name == "cam" else None)
        assert gb_per_s(18) < value < gb_per_s(21), name


def test_posix_far_below():
    assert MODEL.throughput("posix", 4 * KiB, False) < gb_per_s(3)


def test_read_exceeds_write_everywhere():
    for name in BACKENDS:
        read = MODEL.throughput(name, 4 * KiB, False)
        write = MODEL.throughput(name, 4 * KiB, True)
        assert write <= read, name


def test_throughput_monotone_in_granularity():
    for name in ("cam", "spdk", "posix"):
        values = [
            MODEL.throughput(name, g, False)
            for g in (512, 4 * KiB, 64 * KiB, MiB)
        ]
        assert all(b >= a * 0.999 for a, b in zip(values, values[1:])), name


def test_throughput_monotone_in_ssd_count():
    for name in ("cam", "spdk", "bam"):
        values = [
            MODEL.throughput(name, 4 * KiB, False, num_ssds=n,
                             cores=n if name == "cam" else None)
            for n in (1, 2, 4, 8, 12)
        ]
        assert all(b >= a * 0.999 for a, b in zip(values, values[1:])), name


def test_fig12_75_percent_point():
    full = MODEL.throughput("cam", 4 * KiB, False, cores=12)
    three = MODEL.throughput("cam", 4 * KiB, False, cores=3)
    assert three / full == pytest.approx(0.72, abs=0.06)
    six = MODEL.throughput("cam", 4 * KiB, False, cores=6)
    assert six == pytest.approx(full, rel=0.01)


def test_fig15_dram_channel_limit():
    two = MODEL.throughput("spdk", 128 * KiB, False, dram_channels=2)
    sixteen = MODEL.throughput("spdk", 128 * KiB, False, dram_channels=16)
    assert two == pytest.approx(gb_per_s(10.0))  # dram_bw/2 binding
    assert sixteen > gb_per_s(18)
    # CAM untouched by channel count
    cam_two = MODEL.throughput("cam", 128 * KiB, False, dram_channels=2)
    cam_sixteen = MODEL.throughput("cam", 128 * KiB, False,
                                   dram_channels=16)
    assert cam_two == cam_sixteen


def test_fig16_discontiguous_collapse():
    spdk = MODEL.throughput("spdk", 4 * KiB, False, contiguous_dest=False)
    cam = MODEL.throughput("cam", 4 * KiB, False)
    assert spdk == pytest.approx(gb_per_s(1.3), rel=0.1)  # paper: 1.3 GB/s
    assert 1 - spdk / cam == pytest.approx(0.935, abs=0.02)  # paper: 93.5%


def test_gds_near_paper_level():
    value = MODEL.throughput("gds", 128 * KiB, False)
    assert gb_per_s(0.6) < value < gb_per_s(1.1)  # paper: ~0.8


def test_io_time_includes_latency():
    zero = MODEL.io_time("cam", 0)
    assert zero == 0.0
    tiny = MODEL.io_time("cam", 4096)
    assert tiny > 15e-6  # at least a device latency


def test_io_time_rejects_negative():
    with pytest.raises(ConfigurationError):
        MODEL.io_time("cam", -1)


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError):
        MODEL.throughput("turbofs", 4096, False)
    with pytest.raises(ConfigurationError):
        MODEL.control_rate("turbofs", 4096, False)


def test_dram_usage_rule():
    assert MODEL.dram_usage("spdk", 10.0) == 20.0
    assert MODEL.dram_usage("posix", 10.0) == 20.0
    assert MODEL.dram_usage("cam", 10.0) == 0.0
    assert MODEL.dram_usage("bam", 10.0) == 0.0


def test_bam_control_capped_by_gpu():
    """BaM's control rate saturates at 108 SMs worth of IOPS."""
    config = PlatformConfig()
    rate_12 = MODEL.control_rate("bam", 4 * KiB, False, num_ssds=12)
    assert rate_12 == pytest.approx(
        config.gpu.num_sms * config.bam.iops_per_sm
    )
