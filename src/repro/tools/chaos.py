"""Chaos-campaign runner with a machine-readable invariant report.

Runs the :func:`~repro.experiments.extras.run_chaos` fault scenarios —
media faults, offline devices, reactor stalls/crashes, mirrored-device
failover and admission-control overload — and writes a JSON report of
every scenario row plus the folded invariant verdicts.  Exits non-zero
if any invariant failed, so CI can surface regressions without parsing
tables::

    python -m repro.tools.chaos --output BENCH_chaos.json --quick

``--list`` prints the scenario names; ``--only <name>`` (repeatable)
reruns just the scenarios being debugged::

    python -m repro.tools.chaos --quick --only net_partition --only net_flap
"""

from __future__ import annotations

import argparse
import json
import sys


def _table_as_dicts(table):
    columns = list(table.columns)
    return [
        {column: value for column, value in zip(columns, row)}
        for row in table.rows
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run the chaos campaign and report invariants"
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small scenario sizes (the CI configuration)",
    )
    parser.add_argument(
        "--flight-dir", default=None,
        help="dump a flight-recorder bundle here for every failed "
             "scenario (bundle path lands in the JSON report)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="print every scenario name (campaign order) and exit",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="SCENARIO",
        help="run only this scenario (repeatable); unknown names are "
             "rejected against --list",
    )
    args = parser.parse_args(argv)

    from repro.experiments.extras import chaos_scenario_names, run_chaos

    if args.list_scenarios:
        for name in chaos_scenario_names():
            print(name)
        return 0

    result = run_chaos(
        quick=args.quick, flight_dir=args.flight_dir, only=args.only
    )
    scenarios = []
    for table in result.tables:
        scenarios.extend(_table_as_dicts(table))
    # fold the telemetry in: every scenario carries its final metrics
    # snapshot, failed ones additionally point at their debug bundle
    for row in scenarios:
        detail = result.scenario_details.get(row["scenario"], {})
        row["metrics"] = detail.get("metrics", {})
        row["flight_bundle"] = detail.get("flight_bundle")
    failed = [
        row["scenario"] for row in scenarios if not row["invariants_ok"]
    ]
    report = {
        "experiment": result.exp_id,
        "title": result.title,
        "quick": args.quick,
        "flight_dir": args.flight_dir,
        "only": args.only,
        "scenarios": scenarios,
        "notes": result.notes,
        "invariants_passed": not failed,
        "failed_scenarios": failed,
    }
    for table in result.tables:
        print(table.render())
        print()
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, default=str)
        print(f"report written to {args.output}")
    if failed:
        print(f"INVARIANT FAILURES: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all chaos invariants held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
