"""The four pre-allocated GPU<->CPU synchronization memory regions.

Paper Section III-B:

1. **LBA region** — the array of logical blocks to process; written by GPU
   threads, read by the CPU (unified memory).
2. **Args region** — batch arguments (request count, destination address,
   granularity); written by the leading GPU thread (unified memory).
3. **Doorbell region** — "GPU finished writing block IDs"; written only by
   the GPU, polled by the CPU (unified memory).
4. **Completion region** — "CPU processed all requests"; written by the
   CPU, checked by the GPU; lives in GPU memory with a CPU-side copy.

The reproduction keeps regions 1-2 *functional* (real numpy arrays, so a
batch's LBAs round-trip exactly) and models the polling handshakes of
regions 3-4 with events plus the configured poll-interval delay — the
cost without the event-storm of literal busy-waiting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import APIUsageError
from repro.sim.core import Environment, Event


@dataclass
class BatchArgs:
    """Region 2 contents: what the CPU needs to process one batch."""

    request_count: int
    dest_physical_address: int
    granularity: int
    is_write: bool
    payload: Any = None


class SyncRegions:
    """The four regions plus doorbell/completion handshake machinery."""

    def __init__(self, env: Environment, max_requests: int):
        if max_requests <= 0:
            raise APIUsageError("max_requests must be positive")
        self.env = env
        self.max_requests = max_requests
        #: region 1: LBA array (unified memory)
        self.lba_region = np.zeros(max_requests, dtype=np.int64)
        #: region 2: batch arguments
        self.args: Optional[BatchArgs] = None
        #: region 3: GPU -> CPU doorbell (event models the polled flag)
        self._doorbell: Event = env.event()
        #: region 4: CPU -> GPU completion flag
        self._completion: Event = env.event()
        self.batches_rung = 0

    # -- GPU side ------------------------------------------------------------
    def write_lbas(self, lbas: np.ndarray) -> None:
        """GPU threads fill region 1 before the prefetch call."""
        lbas = np.asarray(lbas, dtype=np.int64)
        if lbas.ndim != 1 or len(lbas) == 0:
            raise APIUsageError("LBA array must be a non-empty 1-D array")
        if len(lbas) > self.max_requests:
            raise APIUsageError(
                f"batch of {len(lbas)} exceeds region capacity "
                f"{self.max_requests}"
            )
        self.lba_region[: len(lbas)] = lbas

    def ring_doorbell(self, args: BatchArgs) -> None:
        """Leading GPU thread: write region 2, then flag region 3."""
        if self.args is not None:
            raise APIUsageError(
                "doorbell rung while the previous batch is still pending"
            )
        if args.request_count <= 0 or args.request_count > self.max_requests:
            raise APIUsageError(
                f"invalid request count {args.request_count}"
            )
        self.args = args
        self.batches_rung += 1
        self._doorbell.succeed(args)

    def completion_event(self) -> Event:
        """Region 4, as the event the GPU-side synchronize waits on."""
        return self._completion

    # -- CPU side ------------------------------------------------------------
    def doorbell_event(self) -> Event:
        """Region 3, as the event the CPU poller waits on."""
        return self._doorbell

    def take_batch(self) -> tuple:
        """CPU poller: consume regions 1+2 for the rung batch."""
        if self.args is None:
            raise APIUsageError("no batch pending")
        args = self.args
        lbas = self.lba_region[: args.request_count].copy()
        return lbas, args

    def signal_completion(self) -> None:
        """CPU poller: flag region 4 and re-arm for the next batch."""
        if self.args is None:
            raise APIUsageError("completing a batch that was never rung")
        self.args = None
        completion, self._completion = self._completion, self.env.event()
        self._doorbell = self.env.event()
        completion.succeed()
