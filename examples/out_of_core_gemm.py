"""Out-of-core tiled GEMM (paper Figs. 10b/10c).

C = A @ B where all three matrices live on the simulated SSD array.
Compares CAM, BaM, GDS and SPDK; the result is verified against numpy.

Run:  python examples/out_of_core_gemm.py
"""

import numpy as np

from repro import Platform
from repro.backends import make_backend
from repro.units import KiB
from repro.workloads.gemm import OutOfCoreGemm


def main() -> None:
    m = n = k = 512
    tile = 128
    print(f"C({m}x{n}) = A({m}x{k}) @ B({k}x{n}), tile {tile}, "
          f"12 simulated SSDs\n")
    rng = np.random.default_rng(17)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)

    print(f"{'system':<8}{'total (ms)':>12}{'I/O (ms)':>10}"
          f"{'verified':>10}{'vs bam':>9}")
    results = {}
    for name in ("cam", "bam", "gds", "spdk"):
        platform = Platform()
        backend = make_backend(name, platform)
        gemm = OutOfCoreGemm(
            platform, backend, m, n, k, tile, granularity=64 * KiB
        )
        gemm.stage(a, b)
        results[name] = gemm.run(verify=True)
    bam_time = results["bam"].total_time
    for name, outcome in results.items():
        print(
            f"{name:<8}{outcome.total_time * 1e3:>12.2f}"
            f"{outcome.report.io_time * 1e3:>10.2f}"
            f"{'yes' if outcome.verified else 'NO':>10}"
            f"{bam_time / outcome.total_time:>8.2f}x"
        )
    print("\nCAM prefetches the next tile panel while the current tile"
          "\nmultiplies; BaM's synchronous API serializes; GDS is limited"
          "\nby its EXT4+NVFS request path.")


if __name__ == "__main__":
    main()
