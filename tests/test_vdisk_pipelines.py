"""Tests for the virtual disk and the two-stage pipeline helper."""

import numpy as np
import pytest

from repro.config import PlatformConfig
from repro.errors import ConfigurationError, InvalidLBAError
from repro.hw.platform import Platform
from repro.sim import Environment
from repro.units import KiB
from repro.workloads.pipelines import run_two_stage_pipeline
from repro.workloads.vdisk import VirtualDisk


# --- VirtualDisk -------------------------------------------------------------

def test_vdisk_roundtrip_across_stripes():
    platform = Platform(PlatformConfig(num_ssds=4))
    platform.stripe_blocks = 8  # 4 KiB stripes
    vdisk = VirtualDisk(platform)
    data = (np.arange(64 * KiB) % 251).astype(np.uint8)
    vdisk.write_direct(0, data)
    assert np.array_equal(vdisk.read_direct(0, len(data)), data)
    # the data really is spread over all four devices
    for ssd in platform.ssds:
        assert ssd.store.resident_bytes > 0


def test_vdisk_typed_array_helpers():
    platform = Platform(PlatformConfig(num_ssds=2))
    vdisk = VirtualDisk(platform)
    values = np.arange(1000, dtype=np.int64)
    vdisk.write_array(4096, values)
    assert np.array_equal(vdisk.read_array(4096, 1000, np.int64), values)


def test_vdisk_requires_functional_platform():
    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    with pytest.raises(ConfigurationError):
        VirtualDisk(platform)


def test_vdisk_alignment_enforced():
    platform = Platform(PlatformConfig(num_ssds=1))
    vdisk = VirtualDisk(platform)
    with pytest.raises(InvalidLBAError):
        vdisk.write_direct(100, np.zeros(10, dtype=np.uint8))


def test_vdisk_matches_timed_read_path():
    """Bytes staged via the vdisk are what a timed backend read returns."""
    from repro.backends import make_backend
    from repro.hw.buffers import HostBuffer

    platform = Platform(PlatformConfig(num_ssds=3))
    vdisk = VirtualDisk(platform)
    payload = (np.arange(12 * KiB) % 199).astype(np.uint8)
    vdisk.write_direct(0, payload)
    backend = make_backend("spdk", platform, to_gpu=False)
    target = HostBuffer(12 * KiB)

    def proc():
        for index in range(3):  # three 4 KiB reads over three SSDs
            yield from backend.io(
                index * 8, 4 * KiB, target=target,
                target_offset=index * 4 * KiB,
            )

    platform.env.run(platform.env.process(proc()))
    assert np.array_equal(target.read_bytes(0, 12 * KiB), payload)


# --- pipeline helper --------------------------------------------------------

def _stage(env, duration, log, tag):
    def run(index):
        yield env.timeout(duration)
        log.append((tag, index, env.now))

    return run


def test_pipeline_overlap_halves_balanced_time():
    env = Environment()
    log = []
    report = run_two_stage_pipeline(
        env, 10, _stage(env, 1.0, log, "io"), _stage(env, 1.0, log, "c"),
        overlap=True,
    )
    # fill (1) + 10 compute slots
    assert report.total_time == pytest.approx(11.0)
    assert report.io_time == pytest.approx(10.0)
    assert report.compute_time == pytest.approx(10.0)
    assert report.overlap_efficiency >= 0.85


def test_pipeline_serial_sums_stage_times():
    env = Environment()
    log = []
    report = run_two_stage_pipeline(
        env, 5, _stage(env, 1.0, log, "io"), _stage(env, 2.0, log, "c"),
        overlap=False,
    )
    assert report.total_time == pytest.approx(15.0)
    assert report.overlap_efficiency == pytest.approx(0.0)


def test_pipeline_io_bound_total_tracks_io():
    env = Environment()
    log = []
    report = run_two_stage_pipeline(
        env, 8, _stage(env, 2.0, log, "io"), _stage(env, 0.5, log, "c"),
        overlap=True,
    )
    assert report.total_time == pytest.approx(8 * 2.0 + 0.5)


def test_pipeline_preserves_item_order():
    env = Environment()
    log = []
    run_two_stage_pipeline(
        env, 4, _stage(env, 0.3, log, "io"), _stage(env, 1.0, log, "c"),
        overlap=True,
    )
    compute_indices = [i for tag, i, _ in log if tag == "c"]
    assert compute_indices == [0, 1, 2, 3]


def test_pipeline_double_buffer_bounds_producer_lead():
    """The producer cannot run unboundedly ahead: with a depth-1 buffer,
    the I/O of item i only finishes after the compute of item i-3."""
    env = Environment()
    log = []
    run_two_stage_pipeline(
        env, 6, _stage(env, 0.1, log, "io"), _stage(env, 1.0, log, "c"),
        overlap=True,
    )
    io_end = {i: w for t, i, w in log if t == "io"}
    compute_end = {i: w for t, i, w in log if t == "c"}
    for index in range(3, 6):
        assert io_end[index] >= compute_end[index - 3]


def test_pipeline_rejects_zero_items():
    env = Environment()
    with pytest.raises(ConfigurationError):
        run_two_stage_pipeline(
            env, 0, lambda i: iter(()), lambda i: iter(()), overlap=True
        )
