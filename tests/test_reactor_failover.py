"""Reactor fault tolerance: crashes, stalls, failover and re-homing.

ISSUE 4's second tentpole: a reactor is no longer an implicit
single-point-of-failure.  :meth:`SpdkDriver.fail_reactor` re-homes the
dead reactor's SSDs onto survivors and rescues its queued charges;
:class:`~repro.spdk.reactor.ReactorSupervisor` turns injected stalls and
hard crashes into that failover automatically; a revived reactor is
re-balanced back in.  The hypothesis property at the bottom pins the
core invariant: the SSD -> reactor assignment stays a partition over
alive reactors across arbitrary crash/recover cycles.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PlatformConfig, SPDKConfig
from repro.core.control import BatchRequest, CamManager
from repro.errors import ReactorOfflineError
from repro.hw.faults import FaultInjector
from repro.hw.platform import Platform
from repro.reliability import Reliability
from repro.sim import Environment
from repro.spdk.driver import SpdkDriver
from repro.spdk.reactor import ReactorPool


def _manager(num_ssds=4, num_cores=2, injector=None, coalesce=True):
    platform = Platform(
        PlatformConfig(num_ssds=num_ssds), functional=False,
        fault_injector=injector,
    )
    reliability = Reliability(platform)
    manager = CamManager(
        platform, num_cores=num_cores, coalesce=coalesce,
        reliability=reliability,
    )
    return platform, manager


def _batch(requests=128, index=0):
    lbas = (np.arange(requests, dtype=np.int64) * 7 + index * 13) % (1 << 18)
    return BatchRequest(lbas=lbas, granularity=4096, is_write=False)


def test_fail_reactor_rehomes_every_ssd():
    platform, manager = _manager()
    driver = manager.driver
    assert {h.reactor.reactor_id for h in driver._handles} == {0, 1}
    driver.fail_reactor(0)
    assert driver.pool.reactors[0].crashed
    survivors = {h.reactor.reactor_id for h in driver._handles}
    assert survivors == {1}
    # every SSD still has exactly one owner, and it is alive
    assert len(driver.pool._assignment) == platform.num_ssds
    assert set(driver.pool._assignment) == {1}


def test_failover_mid_batch_completes_without_app_errors():
    platform, manager = _manager()
    env = platform.env

    def crash_then_heal():
        yield env.timeout(50e-6)
        manager.driver.fail_reactor(0)

    env.process(crash_then_heal())
    # the batch-done event fails with a typed DeviceError if any request
    # could not be rescued; a clean return means zero app-visible errors
    io_time = env.run(manager.ring(_batch()))
    assert io_time > 0
    assert manager.requests_done.total == 128


def test_supervisor_turns_injected_crash_into_failover():
    injector = FaultInjector(seed=3)
    injector.crash_reactor(0, at=40e-6)
    platform, manager = _manager(injector=injector)
    supervisor = manager.driver.supervise(check_interval=1e-4)
    io_time = platform.env.run(manager.ring(_batch()))
    assert io_time > 0
    assert injector.reactor_faults_delivered == 1
    assert supervisor.failovers.total >= 1
    assert manager.requests_done.total == 128
    supervisor.stop()


def test_supervisor_detects_stall_and_fails_over():
    injector = FaultInjector(seed=3)
    injector.stall_reactor(0, start=20e-6, duration=50e-3)
    platform, manager = _manager(injector=injector)
    supervisor = manager.driver.supervise(
        check_interval=1e-4, stall_threshold=5e-4
    )
    # batch 1's coalesced group already holds the reactor serial, so the
    # stall parks behind it; batch 2 then queues behind the stall and
    # only the supervisor's detection + failover can rescue it
    platform.env.run(manager.ring(_batch()))
    io_time = platform.env.run(manager.ring(_batch(index=1)))
    assert io_time > 0
    assert supervisor.stalls_detected.total >= 1
    assert supervisor.failovers.total >= 1
    # detection + failover rescue the batch long before the 50 ms stall
    # would have drained on its own
    assert platform.env.now < 10e-3
    assert manager.requests_done.total == 256
    supervisor.stop()


def test_revive_rebalances_ssds_back():
    platform, manager = _manager()
    driver = manager.driver
    driver.fail_reactor(0)
    assert set(driver.pool._assignment) == {1}
    driver.revive_reactor(0)
    assert not driver.pool.reactors[0].crashed
    assert set(driver.pool._assignment) == {0, 1}


def test_all_reactors_dead_raises_typed_error():
    platform = Platform(PlatformConfig(num_ssds=2), functional=False)
    driver = SpdkDriver(platform, num_reactors=2)
    driver.fail_reactor(0)
    driver.fail_reactor(1)
    with pytest.raises(ReactorOfflineError):
        platform.env.run(platform.env.process(driver.io(0, 4096)))


# -- satellite (d): the partition property ---------------------------------

@given(
    num_ssds=st.integers(min_value=1, max_value=12),
    num_reactors=st.integers(min_value=1, max_value=6),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["crash", "revive"]),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=30,
    ),
)
@settings(max_examples=60, deadline=None)
def test_remap_keeps_assignment_a_partition(num_ssds, num_reactors, ops):
    """Across arbitrary crash/recover cycles, ``remap()`` maps every SSD
    to exactly one alive reactor, spread round-robin (counts within 1),
    and an all-dead pool raises instead of mapping to a corpse."""
    env = Environment()
    pool = ReactorPool(env, num_ssds, num_reactors, SPDKConfig())
    for op, index in ops:
        reactor = pool.reactors[index % num_reactors]
        if op == "crash":
            reactor.crash()
        else:
            reactor.revive()
        alive = {r.reactor_id for r in pool.alive_reactors()}
        if not alive:
            with pytest.raises(ReactorOfflineError):
                pool.remap()
            continue
        pool.remap()
        assignment = pool._assignment
        assert len(assignment) == num_ssds
        assert set(assignment) <= alive
        counts = [assignment.count(rid) for rid in sorted(set(assignment))]
        assert max(counts) - min(counts) <= 1
