"""Tests for the GPUDirect Storage (GDS) baseline."""

import pytest

from repro.backends import make_backend, measure_throughput
from repro.config import PlatformConfig
from repro.gds import CuFileDriver
from repro.hw.platform import Platform
from repro.units import KiB, gb_per_s


def _platform(num_ssds=12):
    return Platform(PlatformConfig(num_ssds=num_ssds), functional=False)


def test_register_and_read_file():
    platform = _platform(2)
    driver = CuFileDriver(platform)
    handle = driver.register_file("model.bin", 1 << 20)

    def proc():
        cqe = yield from driver.io_file(handle, 0, 128 * KiB)
        return cqe

    cqe = platform.env.run(platform.env.process(proc()))
    assert cqe.ok
    assert driver.requests_done.total == 1


def test_gds_throughput_collapses_near_paper_value():
    """~0.8 GB/s with 12 SSDs despite the devices' 20+ GB/s ability."""
    platform = _platform(12)
    backend = make_backend("gds", platform)
    measured = measure_throughput(
        backend, 128 * KiB, total_requests=200, concurrency=8
    )
    assert gb_per_s(0.5) < measured < gb_per_s(1.2)


def test_gds_fs_overhead_dominates():
    config = PlatformConfig().gds
    assert config.fs_overhead_fraction == pytest.approx(0.70)
    # the serial CPU section exceeds a 128 KiB device access time
    device_time = 128 * KiB / gb_per_s(6.5)
    assert config.per_request_cpu > 5 * device_time


def test_gds_raw_io_path():
    platform = _platform(2)
    driver = CuFileDriver(platform)

    def proc():
        cqe = yield from driver.io(0, 4096)
        return cqe

    assert platform.env.run(platform.env.process(proc())).ok


def test_gds_requires_filesystem_but_cam_does_not():
    """Paper: GDS runs over EXT4+NVFS; CAM requires raw block devices."""
    platform = _platform(2)
    driver = CuFileDriver(platform)
    assert driver.filesystem is not None
    from repro.core import CamContext

    context = CamContext(Platform(PlatformConfig(num_ssds=2),
                                  functional=False))
    assert not hasattr(context, "filesystem")
