"""Benchmark: regenerate Fig. 1 (GIDS GNN time breakdown)."""


def test_fig01_gids_breakdown(check):
    def verify(result):
        extract = result.tables[0].column("extract")
        assert all(0.4 <= e <= 0.7 for e in extract)

    check("fig01", verify)
