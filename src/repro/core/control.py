"""CAM's CPU-side management threads.

A persistent CPU poller watches the doorbell region; when the GPU rings,
the manager reads the LBA batch, fans the requests out across the
per-SSD SPDK queue pairs (charging each owning reactor's per-request CPU
cost), waits for every completion, and flags the completion region.

The number of *active* reactors is controlled by the
:class:`~repro.core.autotune.CoreAutotuner`; inactive reactors' SSDs are
re-assigned to active ones, which is how "one thread controls multiple
NVMes" (Fig. 12) happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

import numpy as np

from repro.config import CAMConfig
from repro.errors import (
    APIUsageError,
    ConfigurationError,
    DeviceError,
    DeviceOfflineError,
    DeviceTimeoutError,
    MediaError,
    RetryExhaustedError,
)
from repro.hw.platform import Platform
from repro.obs.causal import mint_context
from repro.sim.core import Environment, Event
from repro.sim.resources import Store
from repro.sim.stats import Counter, LatencyStat
from repro.spdk.driver import SpdkDriver


@dataclass
class BatchRequest:
    """One rung batch travelling from the doorbell to the manager."""

    lbas: np.ndarray
    granularity: int
    is_write: bool
    dest: object = None  # pinned GPU buffer (or None for timing runs)
    payloads: Optional[list] = None  # write data per request
    done: Event = None  # signalled when the whole batch completed
    regions: object = None  # SyncRegions to flag on completion
    submit_time: float = 0.0
    trace_span: object = None  # open "batch" span when tracing is enabled
    #: originating :class:`~repro.obs.causal.RequestContext` (or None);
    #: the batch span flow-links back to it via a ``links`` tag
    context: object = None
    #: True when the manager minted the context itself at ``ring`` (the
    #: raw entry point) and therefore owns finishing it
    context_owned: bool = False

    @property
    def request_count(self) -> int:
        return len(self.lbas)

    @property
    def total_bytes(self) -> int:
        return self.request_count * self.granularity


class CamManager:
    """The persistent CPU thread(s) managing the SSDs for one GPU."""

    def __init__(
        self,
        platform: Platform,
        config: Optional[CAMConfig] = None,
        num_cores: Optional[int] = None,
        occupy_cores: bool = False,
        reliability=None,
        coalesce: bool = True,
        admission=None,
        supervise_reactors: bool = False,
    ):
        self.platform = platform
        self.env = platform.env
        self.config = config or platform.config.cam
        #: optional :class:`~repro.reliability.Reliability` bundle; the
        #: driver retries/guards each request, the manager types the
        #: batch-level failure
        self.reliability = reliability
        #: submit batches through the coalesced per-reactor path
        #: (:meth:`SpdkDriver.io_batch` /
        #: :meth:`SpdkDriver.io_batch_reliable`) instead of one process
        #: per request.  Timings are identical; ``coalesce=False`` keeps
        #: the fan-out path for differential testing.  With a
        #: reliability bundle the coalesced path peels failed commands
        #: off the group and re-drives them per-request, so the fast
        #: path and the reliable path are the same path.
        self.coalesce = coalesce
        #: optional :class:`~repro.reliability.AdmissionController`;
        #: :meth:`ring` sheds batches beyond its in-flight bounds with a
        #: typed :class:`~repro.errors.OverloadError`
        self.admission = admission
        max_cores = max(1, -(-platform.num_ssds // 2))  # ceil(N/2)
        self.driver = SpdkDriver(
            platform,
            num_reactors=num_cores or max_cores,
            occupy_cores=occupy_cores,
            reliability=reliability,
        )
        #: optional stall/crash supervisor driving reactor failover
        self.supervisor = (
            self.driver.supervise() if supervise_reactors else None
        )
        self._active_reactors = self.driver.num_reactors
        self._inbox: Store = Store(self.env)
        self._poller = self.env.process(self._poll_loop())
        self.batches_done = Counter(self.env)
        self.requests_done = Counter(self.env)
        self.bytes_done = Counter(self.env)
        self.batch_io_time = LatencyStat()
        #: io time of the most recent batch (fed to the autotuner)
        self.last_io_time = 0.0
        #: window baseline for :meth:`reactor_busy_fractions` —
        #: (sim time, {reactor_id: busy_seconds}) at the last call
        self._busy_mark = (
            self.env.now,
            {
                reactor.reactor_id: reactor.busy_seconds
                for reactor in self.driver.pool.reactors
            },
        )

    # -- core adjustment ----------------------------------------------------
    @property
    def active_reactors(self) -> int:
        return self._active_reactors

    def set_active_reactors(self, count: int) -> None:
        """Apply the autotuner's decision: remap SSDs over ``count`` cores."""
        if not 1 <= count <= self.driver.num_reactors:
            raise ConfigurationError(
                f"active reactor count {count} outside "
                f"[1, {self.driver.num_reactors}]"
            )
        self._active_reactors = count
        self.driver.remap(count)

    # -- the doorbell -> completion path ----------------------------------
    def ring(self, batch: BatchRequest) -> Event:
        """GPU side: hand a batch to the manager (region 3 doorbell).

        Returns the batch's completion event (region 4).

        With an admission controller attached, a batch that would push
        the manager past its in-flight bounds is shed here —
        synchronously, before the doorbell is even recorded — with a
        typed :class:`~repro.errors.OverloadError`.
        """
        if batch.request_count == 0:
            raise APIUsageError("empty batch")
        if self.admission is not None:
            self.admission.admit(batch.request_count, batch.total_bytes)
        if batch.done is None:
            batch.done = self.env.event()
        batch.submit_time = self.env.now
        tracer = self.env.tracer
        if tracer.enabled:
            context = batch.context
            if context is None:
                # raw ring() is itself an entry point: mint the causal
                # context here so even bare batches get a trace_id
                context = mint_context(tracer, "batch")
                batch.context = context
                batch.context_owned = True
            causal_tags = (
                {
                    "parent": context.root,
                    "trace_id": context.trace_id,
                    "links": [context.trace_id],
                }
                if context is not None else {}
            )
            batch.trace_span = tracer.begin(
                "batch",
                requests=batch.request_count,
                bytes=batch.total_bytes,
                is_write=batch.is_write,
                **causal_tags,
            )
        self._inbox.put(batch)
        return batch.done

    def _poll_loop(self) -> Generator:
        while True:
            batch = yield self._inbox.get()
            # the poller notices the doorbell after (on average) half a
            # poll interval, then marshals the batch arguments
            tracer = self.env.tracer
            poll_span = (
                tracer.begin("doorbell_poll", parent=batch.trace_span)
                if tracer.enabled
                else None
            )
            yield self.env.timeout(
                self.config.poll_interval / 2 + self.config.batch_setup_time
            )
            if poll_span is not None:
                tracer.end(poll_span)
            # batches proceed concurrently (e.g. a read batch overlapping
            # a write-back batch); per-reactor CPU contention still
            # serializes the actual submission work
            self.env.process(self._handle_batch(batch))

    def _handle_batch(self, batch: BatchRequest) -> Generator:
        try:
            failures = yield from self._process_batch(batch)
        finally:
            if self.admission is not None:
                self.admission.release(
                    batch.request_count, batch.total_bytes
                )
        # one definition of batch I/O time everywhere: doorbell ring to
        # completion, as the GPU observes it (includes the poll delay)
        io_time = self.env.now - batch.submit_time
        self.last_io_time = io_time
        self.batch_io_time.record(io_time)
        self.batches_done.add()
        self.requests_done.add(batch.request_count)
        self.bytes_done.add(batch.total_bytes)
        metrics = self.env.metrics
        if metrics.enabled:
            metrics.batch_done(
                "write" if batch.is_write else "read",
                io_time,
                batch.request_count,
                batch.total_bytes,
                len(failures),
                trace_id=(
                    batch.context.trace_id
                    if batch.context is not None else None
                ),
            )
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant(
                "completion_signal",
                parent=batch.trace_span,
                requests=batch.request_count,
                failures=len(failures),
            )
            if batch.trace_span is not None:
                tracer.end(batch.trace_span, failures=len(failures))
            if batch.context is not None and batch.context_owned:
                batch.context.finish(failures=len(failures))
        if batch.regions is not None:
            batch.regions.signal_completion()
        if failures:
            batch.done.fail(self._batch_error(batch, failures))
        else:
            batch.done.succeed(io_time)

    def _batch_error(self, batch: BatchRequest, failures) -> DeviceError:
        """Type the batch-level failure from the per-request records.

        ``failures`` is a list of ``(lba, status, attempts, error)``;
        ``error`` is the typed per-request exception when the driver
        raised (watchdog timeouts), else ``None`` for error CQEs.
        """
        prefix = (
            f"{len(failures)} of {batch.request_count} requests failed"
        )
        offline = [
            error
            for (_, _, _, error) in failures
            if isinstance(error, DeviceOfflineError)
        ]
        if offline:
            first = offline[0]
            return DeviceOfflineError(
                f"{prefix}; first: {first}",
                ssd_id=first.ssd_id,
                lba=first.lba,
                attempts=first.attempts,
                timeout=first.timeout,
            )
        timeouts = [
            error
            for (_, _, _, error) in failures
            if isinstance(error, DeviceTimeoutError)
        ]
        if timeouts:
            first = timeouts[0]
            return DeviceTimeoutError(
                f"{prefix}; first: {first}",
                ssd_id=first.ssd_id,
                lba=first.lba,
                attempts=first.attempts,
                timeout=first.timeout,
            )
        lba, status, attempts, _ = failures[0]
        cls = MediaError if self.reliability is None else (
            RetryExhaustedError
        )
        return cls(
            f"{prefix}; first: lba {lba} status {status:#x}",
            lba=lba,
            status=status,
            attempts=attempts,
        )

    def _process_batch(self, batch: BatchRequest) -> Generator:
        """Submit the batch and wait for every CQE.

        The coalesced path groups the batch per owning reactor and walks
        each group inside one generator
        (:meth:`~repro.spdk.driver.SpdkDriver.io_batch` or its
        reliability-aware sibling
        :meth:`~repro.spdk.driver.SpdkDriver.io_batch_reliable`); the
        fan-out path spawns one process per request.  Both produce
        identical simulated timestamps — the differential tests in
        ``tests/test_coalesced_differential.py`` and
        ``tests/test_reliable_coalesced_differential.py`` pin that down.

        In degraded mode (admission controller past its high-water mark,
        or an open circuit breaker) the batch is processed in slices of
        ``admission.batch_limit()`` requests so a struggling backend
        works through smaller units.
        """
        limit = (
            self.admission.batch_limit()
            if self.admission is not None
            else None
        )
        count = batch.request_count
        if limit is None or limit >= count:
            if self.coalesce:
                failures = yield from self._process_batch_coalesced(batch)
            else:
                failures = yield from self._process_batch_fanout(batch)
            return failures
        failures = []
        for start in range(0, count, limit):
            stop = min(start + limit, count)
            if self.coalesce:
                part = yield from self._process_batch_coalesced(
                    batch, start, stop
                )
            else:
                part = yield from self._process_batch_fanout(
                    batch, start, stop
                )
            failures.extend(part)
        return failures

    def _payload(self, batch: BatchRequest, index: int):
        if batch.payloads is not None:
            return batch.payloads[index]
        if batch.is_write and batch.dest is not None:
            # write-back: the data comes from the pinned GPU buffer
            return batch.dest.read_bytes(
                index * batch.granularity, batch.granularity
            )
        return None

    def _process_batch_coalesced(
        self,
        batch: BatchRequest,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> Generator:
        """Group per reactor (batch order preserved inside each group) and
        submit each group through one coalesced generator."""
        driver = self.driver
        platform = self.platform
        handles = driver._handles
        reliable = self.reliability is not None
        submit = driver.io_batch_reliable if reliable else driver.io_batch
        # the fail-fast path records the resize epoch the grouping was
        # computed against, so an elastic remap landing mid-flight drains
        # the group on its original reactor instead of rejecting it (the
        # reliable path re-drives re-homed items per-request instead)
        extra = {} if reliable else {"epoch": driver.resize_epoch}
        stop = batch.request_count if stop is None else stop
        groups: dict = {}  # Reactor -> [(index, ssd_index, local_lba, payload)]
        for index in range(start, stop):
            lba = batch.lbas[index]
            ssd, local_lba = platform.ssd_for_lba(int(lba))
            reactor = handles[ssd.ssd_id].reactor
            items = groups.get(reactor)
            if items is None:
                items = groups[reactor] = []
            items.append(
                (index, ssd.ssd_id, local_lba, self._payload(batch, index))
            )
        grouped = list(groups.values())
        if len(grouped) == 1:
            results = yield from submit(
                grouped[0],
                batch.granularity,
                is_write=batch.is_write,
                target=batch.dest,
                parent_span=batch.trace_span,
                **extra,
            )
        else:
            procs = [
                self.env.process(
                    submit(
                        items,
                        batch.granularity,
                        is_write=batch.is_write,
                        target=batch.dest,
                        parent_span=batch.trace_span,
                        **extra,
                    )
                )
                for items in grouped
            ]
            done = yield self.env.all_of(procs)
            results = []
            for proc in procs:
                results.extend(done[proc])
            results.sort(key=lambda pair: pair[0])
        failures = []
        for index, outcome in results:
            if isinstance(outcome, DeviceError):
                # the driver raised a typed error for this request
                # (watchdog timeout, offline device, dead reactor)
                failures.append(
                    (
                        int(batch.lbas[index]),
                        getattr(outcome, "status", None) or 0,
                        getattr(outcome, "attempts", 1),
                        outcome,
                    )
                )
            elif not outcome.ok:
                failures.append(
                    (
                        int(batch.lbas[index]),
                        outcome.status,
                        outcome.attempts,
                        None,
                    )
                )
        return failures

    def _process_batch_fanout(
        self,
        batch: BatchRequest,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> Generator:
        """Fan the batch out over the SSDs and wait for every CQE."""
        stop = batch.request_count if stop is None else stop
        children = []
        indexes = range(start, stop)
        for index in indexes:
            children.append(
                self.env.process(
                    self._request(batch, index, self._payload(batch, index))
                )
            )
        results = yield self.env.all_of(children)
        failures = []
        for index, child in zip(indexes, children):
            outcome = results[child]
            if isinstance(outcome, DeviceError):
                failures.append(
                    (
                        int(batch.lbas[index]),
                        getattr(outcome, "status", None) or 0,
                        getattr(outcome, "attempts", 1),
                        outcome,
                    )
                )
            elif outcome is not None and not outcome.ok:
                failures.append(
                    (
                        int(batch.lbas[index]),
                        outcome.status,
                        outcome.attempts,
                        None,
                    )
                )
        return failures

    def _request(self, batch: BatchRequest, index: int, payload) -> Generator:
        """One fan-out request; typed device errors (watchdog timeouts)
        become return values so a single bad request cannot kill the
        whole batch process tree."""
        try:
            cqe = yield from self.driver.io(
                int(batch.lbas[index]),
                batch.granularity,
                is_write=batch.is_write,
                payload=payload,
                target=batch.dest,
                target_offset=index * batch.granularity,
                parent_span=batch.trace_span,
            )
        except DeviceError as error:
            return error
        return cqe

    def achieved_throughput(self) -> float:
        """Bytes/second over the observation window."""
        return self.bytes_done.rate()

    def reactor_busy_fractions(self) -> dict:
        """Per-reactor busy fraction since the previous call.

        Returns ``{reactor_id: fraction}`` over the window ending now and
        starting at the last call (or construction).  This is the
        compute/IO-ratio signal the paper's dynamic core adjustment rule
        consumes — a window of near-1.0 fractions on every active reactor
        means the manager is CPU-bound and wants more cores; near-0.0
        means cores can be released.  Derived purely from
        :attr:`Reactor.busy_seconds` deltas, so calling it never touches
        the event heap.  A zero-length window reports 0.0 everywhere.
        """
        now = self.env.now
        last_time, last_busy = self._busy_mark
        window = now - last_time
        fractions = {}
        marks = {}
        for reactor in self.driver.pool.reactors:
            rid = reactor.reactor_id
            busy = reactor.busy_seconds
            marks[rid] = busy
            delta = busy - last_busy.get(rid, 0.0)
            fractions[rid] = (
                min(1.0, delta / window) if window > 0 else 0.0
            )
        self._busy_mark = (now, marks)
        return fractions
