"""Command-line utilities built on the library.

* ``python -m repro.tools.capacity`` — what-if throughput calculator:
  pick a control plane, granularity, SSD count and constraints, get the
  sustainable rate and the binding stage.
"""
