"""Shared benchmark helpers.

Each benchmark regenerates one paper artifact via its experiment runner.
The simulations are deterministic, so a single round measures the
end-to-end cost of regenerating the figure; the benchmark *value* is the
wall-clock of the reproduction pipeline, and the figure's own numbers are
attached as extra_info for inspection in the saved benchmark JSON.
"""

import pytest

from repro.experiments import run_experiment


def run_and_check(benchmark, exp_id, checker=None):
    """Benchmark one experiment and attach its headline numbers."""
    result = benchmark.pedantic(
        run_experiment, args=(exp_id,), kwargs={"quick": True},
        rounds=1, iterations=1,
    )
    assert result.tables, f"{exp_id} produced no tables"
    benchmark.extra_info["experiment"] = exp_id
    benchmark.extra_info["title"] = result.title
    if checker is not None:
        checker(result)
    return result


@pytest.fixture
def check(benchmark):
    def _check(exp_id, checker=None):
        return run_and_check(benchmark, exp_id, checker)

    return _check
