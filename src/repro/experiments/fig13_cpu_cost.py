"""Fig. 13: CPU cost of processing one request — CAM vs SPDK vs libaio.

Paper: CAM/SPDK retire somewhat fewer instructions than libaio (no kernel
layers) but *far* fewer cycles: their polling loops run cache-resident at
high IPC, while libaio's interrupt-driven kernel path misses caches.
Writes cost more than reads because the slower device means more polling
per completion.
"""

from __future__ import annotations

from repro.backends import make_backend, measure_throughput
from repro.config import PlatformConfig
from repro.experiments.report import ExperimentResult, Table
from repro.hw.platform import Platform


def _cam_or_spdk_cost(name: str, is_write: bool, requests: int):
    platform = Platform(PlatformConfig(num_ssds=2), functional=False)
    backend = make_backend(name, platform)
    measure_throughput(
        backend, 4096, is_write=is_write,
        total_requests=requests, concurrency=64,
    )
    driver = (
        backend.manager.driver if name == "cam" else backend.driver
    )
    reactors = driver.pool.reactors
    instructions = sum(r.accountant.total_instructions for r in reactors)
    cycles = sum(r.accountant.total_cycles for r in reactors)
    done = sum(r.accountant.requests for r in reactors)
    return instructions / done, cycles / done


def _libaio_cost(is_write: bool, requests: int):
    platform = Platform(PlatformConfig(num_ssds=2), functional=False)
    backend = make_backend("libaio", platform)
    measure_throughput(
        backend, 4096, is_write=is_write,
        total_requests=requests, concurrency=backend.concurrency,
    )
    accountant = backend.stack.accountant
    return (
        accountant.instructions_per_request(),
        accountant.cycles_per_request(),
    )


def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig13",
        title="CPU instructions and cycles per request",
        paper_expectation=(
            "CAM ~= SPDK < libaio on instructions; CAM/SPDK far below "
            "libaio on cycles (polling IPC); writes cost more than reads"
        ),
    )
    requests = 400 if quick else 3000
    for is_write, rw in ((False, "random read"), (True, "random write")):
        table = result.add_table(
            Table(
                f"{rw}: per-request CPU cost",
                ["system", "instructions", "cycles"],
            )
        )
        for name in ("cam", "spdk"):
            instructions, cycles = _cam_or_spdk_cost(name, is_write,
                                                     requests)
            table.add_row(name, instructions, cycles)
        instructions, cycles = _libaio_cost(is_write, requests)
        table.add_row("libaio", instructions, cycles)
    result.note(
        "BaM is excluded as in the paper: it spends GPU, not CPU, resources"
    )
    return result
