"""The serving engine: session turns over an SSD-backed KV cache.

One :class:`ServingEngine` drives a :class:`~repro.serving.sessions.
SessionPool` against a storage backend.  Per session turn it

1. waits for a **decode slot** (continuous-batching capacity of the
   simulated GPU; the queue wait is the load-dependent part of TTFT);
2. asks the :class:`~repro.serving.kvstore.KvBlockStore` which of the
   session's KV blocks were evicted while the user was thinking, and
   **prefetches** them from SSD — through the CAM Table II device API
   (``prefetch``/``prefetch_synchronize``) when the backend is CAM, so
   the whole batch rides :meth:`CamManager.ring` and every hot-path
   subsystem (coalescing, reliability, admission control, the elastic
   controller) applies unchanged; per-block concurrent requests on the
   other backends;
3. runs prefill **overlapped** with the KV load when the backend's API
   is asynchronous (CAM), serially otherwise — the same convention the
   training workloads use (``overlap = backend.name == "cam"``);
4. decodes the response, **writing back** newly filled KV blocks as
   they are produced (asynchronously under CAM, inline otherwise), so
   every resident block stays clean and eviction is free.

Admission control composes without special cases in the manager: a shed
batch surfaces here as :class:`~repro.errors.OverloadError` and the
engine re-rings after a deterministic backoff — the client-side half of
the PR-4 overload contract.

All metric pushes go through :class:`~repro.serving.metrics.
ServingMetrics` and are guarded on one attribute test, keeping
metrics-on runs bit-identical in simulated history to metrics-off runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

import numpy as np

from repro.backends.base import StorageBackend
from repro.cache.gpucache import GpuCache
from repro.errors import ConfigurationError, OverloadError, ReproError
from repro.obs.causal import mint_context
from repro.serving.kvstore import KvBlockStore
from repro.serving.metrics import ServingMetrics
from repro.serving.sessions import Session, SessionPool, Turn
from repro.sim.resources import Resource


@dataclass
class ServingResult:
    """Everything one serving run produced."""

    backend: str
    policy: str
    num_sessions: int
    turns_done: int = 0
    tokens_done: int = 0
    #: simulated seconds from run start to last turn completion
    elapsed_s: float = 0.0
    ttfts: List[float] = field(default_factory=list)
    queue_waits: List[float] = field(default_factory=list)
    kv_hits: int = 0
    kv_misses: int = 0
    kv_evictions: int = 0
    overload_retries: int = 0

    @property
    def tokens_per_s(self) -> float:
        return self.tokens_done / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def kv_hit_rate(self) -> float:
        total = self.kv_hits + self.kv_misses
        return self.kv_hits / total if total else 0.0

    def ttft_quantile(self, q: float) -> float:
        if not self.ttfts:
            return 0.0
        return float(np.quantile(np.asarray(self.ttfts), q))

    @property
    def ttft_p50(self) -> float:
        return self.ttft_quantile(0.50)

    @property
    def ttft_p99(self) -> float:
        return self.ttft_quantile(0.99)

    def summary(self) -> dict:
        return {
            "backend": self.backend,
            "policy": self.policy,
            "sessions": self.num_sessions,
            "turns": self.turns_done,
            "tokens": self.tokens_done,
            "sim_s": self.elapsed_s,
            "ttft_p50_ms": self.ttft_p50 * 1e3,
            "ttft_p99_ms": self.ttft_p99 * 1e3,
            "tokens_per_s": self.tokens_per_s,
            "kv_hit_rate": self.kv_hit_rate,
            "kv_evictions": self.kv_evictions,
            "overload_retries": self.overload_retries,
        }


class ServingEngine:
    """Serve one session pool over one backend + KV block store."""

    def __init__(
        self,
        platform,
        backend: StorageBackend,
        store: KvBlockStore,
        pool: SessionPool,
        max_concurrent_decodes: int = 64,
        prefill_time_per_token: float = 2e-6,
        decode_time_per_token: float = 100e-6,
        overlap: Optional[bool] = None,
        overload_backoff_s: float = 50e-6,
        max_overload_retries: int = 64,
        gpu_cache: Optional[GpuCache] = None,
    ):
        if max_concurrent_decodes < 1:
            raise ConfigurationError(
                "max_concurrent_decodes must be >= 1"
            )
        if prefill_time_per_token < 0 or decode_time_per_token <= 0:
            raise ConfigurationError(
                "prefill time must be >= 0 and decode time > 0"
            )
        self.platform = platform
        self.env = platform.env
        self.backend = backend
        self.store = store
        self.pool = pool
        self.max_concurrent_decodes = max_concurrent_decodes
        self.prefill_time_per_token = prefill_time_per_token
        self.decode_time_per_token = decode_time_per_token
        #: overlap I/O with compute (the async-API advantage); defaults
        #: to the repo-wide convention: only CAM's API is asynchronous
        self.overlap = (
            backend.name == "cam" if overlap is None else overlap
        )
        self.overload_backoff_s = overload_backoff_s
        self.max_overload_retries = max_overload_retries
        #: optional GPU-memory cache tier (``None`` keeps the engine's
        #: event sequence byte-for-byte identical to the pre-cache path)
        self.gpu_cache = gpu_cache
        if (
            gpu_cache is not None
            and gpu_cache.line_bytes != store.layout.block_bytes
        ):
            raise ConfigurationError(
                f"gpu cache line ({gpu_cache.line_bytes}B) must match "
                f"the KV block ({store.layout.block_bytes}B)"
            )
        #: CAM context when the backend carries one (CamBackend does);
        #: each session gets its own device-API handle off it
        self._cam_context = getattr(backend, "context", None)
        if backend.name == "cam" and self._cam_context is None:
            raise ConfigurationError(
                "cam backend without a CamContext cannot serve"
            )
        self._slots = Resource(self.env, capacity=max_concurrent_decodes)
        self._smetrics: Optional[ServingMetrics] = None
        self._result: Optional[ServingResult] = None

    # -- the run --------------------------------------------------------
    def run(self) -> ServingResult:
        """Drive every session to completion; returns the result."""
        env = self.env
        self._smetrics = ServingMetrics.from_env(env)
        self._result = ServingResult(
            backend=self.backend.name,
            policy=self.store.policy.name,
            num_sessions=len(self.pool),
        )
        start = env.now
        procs = [
            env.process(self._session(session))
            for session in self.pool.sessions()
        ]
        env.run(env.all_of(procs))
        result = self._result
        result.elapsed_s = env.now - start
        result.kv_hits = self.store.hits
        result.kv_misses = self.store.misses
        result.kv_evictions = self.store.evictions
        return result

    # -- per-session process --------------------------------------------
    def _session(self, session: Session) -> Generator:
        env = self.env
        yield env.timeout(session.arrival_s)
        smetrics = self._smetrics
        if smetrics is not None:
            smetrics.session_started()
        tracer = env.tracer
        for turn_index, turn in enumerate(session.turns):
            if turn_index:
                yield env.timeout(turn.think_s)
            arrival = env.now
            # each turn is a causal entry point: its context spans the
            # queue wait through the final durable write-back
            ctx = (
                mint_context(
                    tracer, "serving_turn",
                    session=session.session_id, turn=turn_index,
                )
                if tracer.enabled else None
            )
            queue_span = (
                ctx.begin("queue_wait") if ctx is not None else None
            )
            with self._slots.request() as slot:
                yield slot
                if queue_span is not None:
                    ctx.end(queue_span)
                queue_wait = env.now - arrival
                if smetrics is not None:
                    smetrics.decode_started(queue_wait)
                self._result.queue_waits.append(queue_wait)
                try:
                    yield from self._turn(session, turn, arrival, ctx)
                finally:
                    if ctx is not None:
                        ctx.finish(tokens=turn.decode_tokens)
                if smetrics is not None:
                    smetrics.decode_finished()
        if smetrics is not None:
            smetrics.session_finished()

    def _turn(self, session: Session, turn: Turn,
              arrival: float, ctx=None) -> Generator:
        env = self.env
        store = self.store
        sid = session.session_id
        api = (
            self._cam_context.device_api()
            if self._cam_context is not None
            else None
        )
        if api is not None and ctx is not None:
            # CAM batches rung by this turn join its request context
            api.trace_ctx = ctx
        # per-block backends that understand causal propagation (the
        # disaggregated tier) get the context threaded through io()
        io_kw = (
            {"trace_ctx": ctx}
            if ctx is not None
            and getattr(self.backend, "accepts_trace_ctx", False)
            else {}
        )

        # -- context load: prefetch evicted KV blocks ------------------
        hits, missing = store.acquire(sid)
        pinned = list(hits) + [block for block, _ in missing]
        store.pin(pinned)
        prefill = turn.prompt_tokens * self.prefill_time_per_token
        load_procs = []
        cache = self.gpu_cache
        plan = None
        fetch_lbas = [lba for _, lba in missing]
        if missing and cache is not None:
            # GPU-cache-resident blocks never reach the SSD path: one
            # HBM crossing instead of a prefetch; readahead candidates
            # go down the async path in a background batch so the
            # demand load never waits on speculation
            plan = cache.access_batch(
                fetch_lbas,
                granularity=store.layout.block_bytes,
                consumer=sid,
                trace_ctx=ctx,
            )
            if plan.speculative_lbas:
                env.process(self._speculate(plan))
            if plan.hit_lbas:
                hit_span = (
                    ctx.begin("cache_hit", blocks=len(plan.hit_lbas))
                    if ctx is not None else None
                )
                yield env.timeout(cache.hit_seconds(
                    len(plan.hit_lbas) * store.layout.block_bytes
                ))
                if hit_span is not None:
                    ctx.end(hit_span)
                hit_set = set(plan.hit_lbas)
                for block, lba in missing:
                    if lba in hit_set:
                        store.admit(block)
            fetch_lbas = plan.missing_lbas
        pending_load = bool(fetch_lbas)
        try:
            if fetch_lbas:
                if api is not None:
                    yield from self._ring(
                        api.prefetch,
                        np.asarray(fetch_lbas, dtype=np.int64),
                        ctx,
                    )
                else:
                    load_procs = [
                        env.process(
                            self.backend.io(
                                lba, store.layout.block_bytes,
                                is_write=False, **io_kw,
                            )
                        )
                        for lba in fetch_lbas
                    ]
                if not self.overlap:
                    # synchronous API: the load finishes before prefill
                    yield from self._wait_load(api, load_procs, ctx)
                    load_procs = []
                    pending_load = False
            if prefill:
                prefill_span = (
                    ctx.begin("prefill", tokens=turn.prompt_tokens)
                    if ctx is not None else None
                )
                yield env.timeout(prefill)
                if prefill_span is not None:
                    ctx.end(prefill_span)
            if pending_load and self.overlap:
                yield from self._wait_load(api, load_procs, ctx)
        except ReproError:
            if plan is not None:
                cache.abort_demand(plan)
            raise
        if plan is not None:
            cache.commit_demand(plan)
            hit_set = set(plan.hit_lbas)
            for block, lba in missing:
                if lba not in hit_set:
                    store.admit(block)
        else:
            for block, _ in missing:
                store.admit(block)

        # -- decode: first token, then block-sized chunks --------------
        writeback: List[tuple] = []
        write_procs: List = []
        cam_wb_pending = False
        produced = 0
        writeback.extend(store.append_tokens(sid, turn.prompt_tokens))
        first_token = True
        tokens_per_block = store.layout.tokens_per_block
        while produced < turn.decode_tokens:
            chunk = min(tokens_per_block, turn.decode_tokens - produced)
            decode_span = (
                ctx.begin("decode", tokens=chunk)
                if ctx is not None else None
            )
            if first_token:
                yield env.timeout(self.decode_time_per_token)
                ttft = env.now - arrival
                self._result.ttfts.append(ttft)
                if self._smetrics is not None:
                    self._smetrics.first_token(ttft)
                first_token = False
                if ctx is not None:
                    ctx.tracer.annotate(ctx.root, ttft=ttft)
                if chunk > 1:
                    yield env.timeout(
                        (chunk - 1) * self.decode_time_per_token
                    )
            else:
                yield env.timeout(chunk * self.decode_time_per_token)
            if decode_span is not None:
                ctx.end(decode_span)
            produced += chunk
            writeback.extend(store.append_tokens(sid, chunk))
            if writeback:
                if cache is not None:
                    # produced on the GPU: read-after-write is a hit
                    cache.fill(
                        [lba for _, lba in writeback],
                        granularity=store.layout.block_bytes,
                    )
                if api is not None:
                    # drain the previous async batch, ring the next one;
                    # both overlap with the following decode chunk
                    if cam_wb_pending:
                        wb_span = (
                            ctx.begin("writeback_wait")
                            if ctx is not None else None
                        )
                        yield from api.write_back_synchronize()
                        if wb_span is not None:
                            ctx.end(wb_span)
                    yield from self._ring(
                        api.write_back,
                        np.asarray([lba for _, lba in writeback],
                                   dtype=np.int64),
                        ctx,
                    )
                    cam_wb_pending = True
                elif self.overlap:
                    write_procs.extend(
                        env.process(
                            self.backend.io(
                                lba, store.layout.block_bytes,
                                is_write=True, **io_kw,
                            )
                        )
                        for _, lba in writeback
                    )
                else:
                    wb_span = (
                        ctx.begin("writeback_wait",
                                  blocks=len(writeback))
                        if ctx is not None else None
                    )
                    for _, lba in writeback:
                        yield from self.backend.io(
                            lba, store.layout.block_bytes,
                            is_write=True, **io_kw,
                        )
                    if wb_span is not None:
                        ctx.end(wb_span)
                writeback = []

        # -- turn end: every produced block durable on SSD -------------
        if cam_wb_pending or write_procs:
            wb_span = (
                ctx.begin("writeback_wait") if ctx is not None else None
            )
            if cam_wb_pending:
                yield from api.write_back_synchronize()
            if write_procs:
                yield env.all_of(write_procs)
            if wb_span is not None:
                ctx.end(wb_span)
        store.unpin(pinned)
        self._result.turns_done += 1
        self._result.tokens_done += turn.decode_tokens
        if self._smetrics is not None:
            self._smetrics.turn_done(turn.decode_tokens)
            self._smetrics.store_state(
                store, env.now, self._result.tokens_done
            )

    # -- plumbing -------------------------------------------------------
    def _speculate(self, plan) -> Generator:
        """Background process: fetch a plan's readahead blocks.

        Best-effort by design — a shed or storage error drops the
        speculation (charged readahead counters keep the waste visible
        to the accuracy loop) and never fails the serving turn.
        """
        cache = self.gpu_cache
        try:
            if self._cam_context is not None:
                api = self._cam_context.device_api()
                yield from api.prefetch(
                    np.asarray(plan.speculative_lbas, dtype=np.int64),
                    None,
                    self.store.layout.block_bytes,
                )
                yield from api.prefetch_synchronize()
            else:
                procs = [
                    self.env.process(
                        self.backend.io(
                            lba, self.store.layout.block_bytes,
                            is_write=False,
                        )
                    )
                    for lba in plan.speculative_lbas
                ]
                yield self.env.all_of(procs)
        except ReproError:
            cache.abort_speculative(plan)
            return
        cache.commit_speculative(plan)

    def _ring(self, initiate, lbas: np.ndarray, ctx=None) -> Generator:
        """Issue one CAM batch, re-ringing after admission sheds.

        ``initiate`` is ``api.prefetch`` or ``api.write_back``; a shed
        surfaces synchronously as :class:`OverloadError` and the engine
        backs off deterministically (linear, no RNG) before retrying —
        admission control needs no serving-specific hot-path case.
        """
        granularity = self.store.layout.block_bytes
        for attempt in range(self.max_overload_retries + 1):
            try:
                ring_span = (
                    ctx.begin("doorbell", requests=len(lbas))
                    if ctx is not None else None
                )
                try:
                    yield from initiate(lbas, None, granularity)
                finally:
                    if ring_span is not None:
                        ctx.end(ring_span)
                return
            except OverloadError:
                if attempt >= self.max_overload_retries:
                    raise
                self._result.overload_retries += 1
                if self._smetrics is not None:
                    self._smetrics.overload_retry()
                backoff_span = (
                    ctx.begin("overload_backoff", attempt=attempt)
                    if ctx is not None else None
                )
                yield self.env.timeout(
                    self.overload_backoff_s * (attempt + 1)
                )
                if backoff_span is not None:
                    ctx.end(backoff_span)

    def _wait_load(self, api, load_procs, ctx=None) -> Generator:
        load_span = (
            ctx.begin("load_wait") if ctx is not None else None
        )
        if api is not None:
            yield from api.prefetch_synchronize()
        elif load_procs:
            yield self.env.all_of(load_procs)
        if load_span is not None:
            ctx.end(load_span)

    def __repr__(self) -> str:
        return (
            f"<ServingEngine backend={self.backend.name} "
            f"sessions={len(self.pool)} overlap={self.overlap}>"
        )
