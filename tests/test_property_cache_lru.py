"""Property-based test: the CachedBackend's LRU against a reference."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import CachedBackend, make_backend
from repro.config import PlatformConfig
from repro.hw.platform import Platform


class _ReferenceLRU:
    """Straightforward LRU over page ids."""

    def __init__(self, capacity):
        self.capacity = capacity
        self._pages = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page):
        if page in self._pages:
            self.hits += 1
            self._pages.move_to_end(page)
        else:
            self.misses += 1
            self._pages[page] = None
            self._pages.move_to_end(page)
            while len(self._pages) > self.capacity:
                self._pages.popitem(last=False)


@given(
    capacity=st.integers(1, 8),
    accesses=st.lists(st.integers(0, 15), min_size=1, max_size=80),
)
@settings(max_examples=40, deadline=None)
def test_cache_hit_miss_sequence_matches_reference(capacity, accesses):
    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    inner = make_backend("spdk", platform, to_gpu=False)
    cache = CachedBackend(inner, capacity_bytes=capacity * 4096,
                          to_gpu=False)
    reference = _ReferenceLRU(capacity)

    def workload():
        for page in accesses:
            yield from cache.io(page * 8, 4096)  # page-aligned 4 KiB

    platform.env.run(platform.env.process(workload()))
    for page in accesses:
        reference.access(page)
    assert cache.hits.total == reference.hits
    assert cache.misses.total == reference.misses


@given(
    capacity=st.integers(1, 6),
    reads=st.lists(st.integers(0, 9), min_size=1, max_size=40),
    write_page=st.integers(0, 9),
)
@settings(max_examples=30, deadline=None)
def test_cache_writes_never_admit_new_pages(capacity, reads, write_page):
    """Write-through updates cached copies but does not admit pages, so
    the resident set is determined by reads alone."""
    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    inner = make_backend("spdk", platform, to_gpu=False)
    cache = CachedBackend(inner, capacity_bytes=capacity * 4096,
                          to_gpu=False)

    def workload():
        for page in reads:
            yield from cache.io(page * 8, 4096)
        resident_before = set(cache._lru)
        yield from cache.io(write_page * 8, 4096, is_write=True)
        assert set(cache._lru) == resident_before

    platform.env.run(platform.env.process(workload()))
