"""Session pool and arrival model for the serving workload.

A :class:`SessionPool` pre-generates every session of a run from one
seeded :class:`numpy.random.Generator`, so a serving simulation is a
pure function of ``(SessionConfig, platform)`` — the property every
bit-identity differential in this repo leans on.

Each :class:`Session` is a conversation: an arrival time (exponential
inter-arrivals, i.e. a Poisson open-loop arrival process), a prompt
context length, and one or more :class:`Turn`\\ s.  A turn is
*think time* (the user reading/typing; the session's KV blocks are
eviction candidates the whole time), a short follow-up prompt, and a
decode length.  Lengths are drawn uniformly from closed ranges — wide
enough to spread sessions across KV-block counts, narrow enough that
quick-mode runs stay comparable across backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Turn:
    """One request/response exchange within a session."""

    #: seconds the user spends before sending this turn (0 for the first)
    think_s: float
    #: prompt tokens appended this turn (the full context on turn 0)
    prompt_tokens: int
    #: response tokens to decode
    decode_tokens: int


@dataclass(frozen=True)
class Session:
    session_id: int
    #: simulated seconds after run start when the session arrives
    arrival_s: float
    turns: Tuple[Turn, ...]

    @property
    def total_decode_tokens(self) -> int:
        return sum(turn.decode_tokens for turn in self.turns)


@dataclass(frozen=True)
class SessionConfig:
    """Knobs of the arrival model (all draws are seed-deterministic)."""

    num_sessions: int = 100
    seed: int = 17
    #: session arrivals per simulated second (Poisson process); the
    #: default spreads the population over ~20 ms of simulated time
    arrival_rate: float = 5000.0
    #: mean think time between turns (exponential)
    mean_think_s: float = 2e-3
    turns_min: int = 1
    turns_max: int = 3
    context_min_tokens: int = 256
    context_max_tokens: int = 1024
    prompt_min_tokens: int = 16
    prompt_max_tokens: int = 64
    decode_min_tokens: int = 16
    decode_max_tokens: int = 64

    def __post_init__(self):
        if self.num_sessions < 1:
            raise ConfigurationError("num_sessions must be >= 1")
        if self.arrival_rate <= 0 or self.mean_think_s < 0:
            raise ConfigurationError(
                "arrival_rate must be > 0 and mean_think_s >= 0"
            )
        for lo, hi, what in (
            (self.turns_min, self.turns_max, "turns"),
            (self.context_min_tokens, self.context_max_tokens, "context"),
            (self.prompt_min_tokens, self.prompt_max_tokens, "prompt"),
            (self.decode_min_tokens, self.decode_max_tokens, "decode"),
        ):
            if not 1 <= lo <= hi:
                raise ConfigurationError(
                    f"{what} range [{lo}, {hi}] must satisfy 1 <= min <= max"
                )


class SessionPool:
    """Deterministically pre-generated sessions for one serving run."""

    def __init__(self, config: SessionConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        arrivals = np.cumsum(
            rng.exponential(
                1.0 / config.arrival_rate, size=config.num_sessions
            )
        )
        self._sessions: List[Session] = []
        for session_id in range(config.num_sessions):
            num_turns = int(
                rng.integers(config.turns_min, config.turns_max + 1)
            )
            turns = []
            for turn_index in range(num_turns):
                think = (
                    0.0 if turn_index == 0
                    else float(rng.exponential(config.mean_think_s))
                )
                prompt = int(
                    rng.integers(
                        config.context_min_tokens,
                        config.context_max_tokens + 1,
                    )
                    if turn_index == 0
                    else rng.integers(
                        config.prompt_min_tokens,
                        config.prompt_max_tokens + 1,
                    )
                )
                decode = int(
                    rng.integers(
                        config.decode_min_tokens,
                        config.decode_max_tokens + 1,
                    )
                )
                turns.append(Turn(think, prompt, decode))
            self._sessions.append(
                Session(session_id, float(arrivals[session_id]),
                        tuple(turns))
            )

    def sessions(self) -> List[Session]:
        return list(self._sessions)

    @property
    def total_turns(self) -> int:
        return sum(len(s.turns) for s in self._sessions)

    @property
    def total_decode_tokens(self) -> int:
        return sum(s.total_decode_tokens for s in self._sessions)

    def __len__(self) -> int:
        return len(self._sessions)

    def __repr__(self) -> str:
        return (
            f"<SessionPool {len(self)} sessions, "
            f"{self.total_turns} turns, seed={self.config.seed}>"
        )
