"""Shared resources for the discrete-event engine.

* :class:`Resource` — a counted resource (e.g. flash channels, CPU cores).
  Requests are granted FIFO; a request event doubles as a context manager so
  call sites read naturally::

      with resource.request() as req:
          yield req
          ...  # holding the resource
      # released on exit

* :class:`PriorityResource` — same, but lower ``priority`` values are granted
  first among waiters.
* :class:`Store` — a FIFO buffer of items with blocking put/get, used for
  queues between producer and consumer processes (e.g. NVMe SQ/CQ rings).
* :class:`Container` — a continuous quantity (e.g. buffer bytes).

Hot-path notes
--------------
``Resource.request``/``release`` and ``Store.put``/``get`` sit on the
per-request path of every control plane, so both have O(1) fast paths for
the overwhelmingly common shapes (free slot, no waiters; plain FIFO get
with no predicate waiters) that bypass the general settle/grant loops.
The fast paths schedule exactly the same success events in exactly the
same order as the general path, so simulated timestamps are unchanged.

``PriorityResource.cancel`` uses lazy deletion: cancelled entries stay in
the heap, are skipped at grant time, and the heap is compacted only once
stale entries outnumber live ones — cancelling under a large waiter queue
was previously O(n log n) per cancel (rebuild + re-heapify).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.errors import SimulationError
from repro.sim.core import Environment, Event, _PENDING


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        # inlined Event.__init__ — requests are a per-I/O allocation
        self.env = resource.env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class Resource:
    """A counted resource with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim a slot; yield the returned event to wait for the grant."""
        req = Request(self)
        if not self._queue and len(self._users) < self.capacity:
            # fast path: free slot, nobody ahead — grant immediately.
            # The event is born *processed* (no heap entry): nobody else
            # can hold a callback on an event we have not returned yet,
            # so the requester's ``yield`` continues synchronously at the
            # same instant the scheduled grant would have run.
            self._users.append(req)
            req._ok = True
            req._value = None
            req.callbacks = None
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Give back a previously granted slot.

        Releasing a request that was never granted cancels it instead;
        releasing the *same granted* request twice is always a lifecycle
        bug in the caller (the slot it would free belongs to someone else
        by then) and raises :class:`SimulationError`.
        """
        try:
            self._users.remove(request)
        except ValueError:
            if request.triggered:
                # Triggered but not holding a slot: it was granted once
                # and already released — a double release.  Silently
                # falling through to _cancel here used to no-op and mask
                # lifecycle bugs in callers.
                raise SimulationError(
                    f"double release of {request!r}: the request was "
                    "already released"
                )
            # Releasing an ungranted request cancels it instead.
            self._cancel(request)
            return
        self._grant()

    def _cancel(self, request: Request) -> None:
        try:
            self._queue.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        queue = self._queue
        users = self._users
        capacity = self.capacity
        while queue and len(users) < capacity:
            req = queue.popleft()
            if req.triggered:
                continue
            users.append(req)
            req.succeed()


class PriorityRequest(Request):
    __slots__ = ("priority", "cancelled", "in_heap")

    def __init__(self, resource: "PriorityResource", priority: float):
        super().__init__(resource)
        self.priority = priority
        #: lazy-deletion marker: cancelled entries stay heap-resident and
        #: are skipped at grant time
        self.cancelled = False
        #: True while a heap entry references this request
        self.in_heap = False


class PriorityResource(Resource):
    """A resource whose waiters are served lowest-``priority`` first,
    breaking ties FIFO."""

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._pqueue: list = []
        self._seq = 0
        #: heap entries whose request was cancelled (lazy deletion)
        self._stale = 0

    @property
    def queued(self) -> int:
        return len(self._pqueue) - self._stale

    def request(self, priority: float = 0.0) -> PriorityRequest:
        req = PriorityRequest(self, priority)
        if not self._pqueue and len(self._users) < self.capacity:
            # fast path: free slot and an empty waiter heap — grant as a
            # born-processed event (see Resource.request)
            self._users.append(req)
            req._ok = True
            req._value = None
            req.callbacks = None
            return req
        self._seq += 1
        req.in_heap = True
        heapq.heappush(self._pqueue, (priority, self._seq, req))
        self._grant()
        return req

    def _cancel(self, request: Request) -> None:
        """Lazy deletion: mark the entry and skip it at grant time.

        The heap is compacted only once stale entries outnumber live
        ones, so cancelling under a large waiter queue is O(1) amortized
        instead of the previous rebuild + re-heapify per cancel.
        """
        if not getattr(request, "in_heap", False) or request.cancelled:
            return
        request.cancelled = True
        self._stale += 1
        if self._stale > len(self._pqueue) // 2:
            stale = [
                entry for entry in self._pqueue if entry[2].cancelled
            ]
            self._pqueue = [
                entry for entry in self._pqueue if not entry[2].cancelled
            ]
            for entry in stale:
                entry[2].in_heap = False
            heapq.heapify(self._pqueue)
            self._stale = 0

    def _grant(self) -> None:
        pqueue = self._pqueue
        users = self._users
        capacity = self.capacity
        while pqueue and len(users) < capacity:
            _, _, req = heapq.heappop(pqueue)
            req.in_heap = False
            if req.cancelled:
                self._stale -= 1
                continue
            if req.triggered:
                continue
            users.append(req)
            req.succeed()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        # inlined Event.__init__ — ring puts are a per-I/O allocation
        self.env = store.env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self.item = item


class StoreGet(Event):
    __slots__ = ("predicate",)

    def __init__(self, store: "Store", predicate: Optional[Callable]):
        # inlined Event.__init__ — ring gets are a per-I/O allocation
        self.env = store.env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self.predicate = predicate


class Store:
    """A FIFO buffer of items with optional capacity.

    ``yield store.put(item)`` blocks while full; ``yield store.get()`` blocks
    while empty and resumes with the item.  ``get(predicate)`` takes the
    first item satisfying the predicate (FilterStore behaviour).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        event = StorePut(self, item)
        if not self._putters:
            getters = self._getters
            if not getters:
                if len(self.items) < self.capacity:
                    # fast path: room and nobody waiting.  The put event
                    # is born processed (no heap entry) — only the caller
                    # can observe it, and its ``yield`` continues
                    # synchronously at the same instant.
                    self.items.append(item)
                    event._ok = True
                    event._value = None
                    event.callbacks = None
                    return event
            elif getters[0].predicate is None and not self.items:
                # fast path: hand the item straight to the oldest plain
                # getter.  The getter's wakeup stays heap-scheduled (its
                # process holds a callback); the putter's own event is
                # born processed as above.
                event._ok = True
                event._value = None
                event.callbacks = None
                getters.popleft().succeed(item)
                return event
        self._putters.append(event)
        self._settle()
        return event

    def get(self, predicate: Optional[Callable] = None) -> StoreGet:
        event = StoreGet(self, predicate)
        if predicate is None and self.items and not self._getters:
            # fast path: FIFO pop with nobody queued ahead; born
            # processed (no heap entry), so the caller's ``yield``
            # continues synchronously
            event._ok = True
            event._value = self.items.pop(0)
            event.callbacks = None
            # the freed slot may admit waiting putters (store was full)
            putters = self._putters
            while putters and len(self.items) < self.capacity:
                put = putters.popleft()
                self.items.append(put.item)
                put.succeed()
            return event
        if not self.items and not self._putters:
            # fast path: empty store — the getter just parks; nothing for
            # _settle to do
            self._getters.append(event)
            return event
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            # admit pending puts while there is room
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            # satisfy pending gets
            remaining: Deque[StoreGet] = deque()
            while self._getters:
                get = self._getters.popleft()
                index = self._match(get.predicate)
                if index is None:
                    remaining.append(get)
                else:
                    get.succeed(self.items.pop(index))
                    progress = True
            self._getters = remaining

    def _match(self, predicate: Optional[Callable]) -> Optional[int]:
        if predicate is None:
            return 0 if self.items else None
        for index, item in enumerate(self.items):
            if predicate(item):
                return index
        return None


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        self.amount = amount


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        self.amount = amount


class Container:
    """A continuous quantity with blocking put/get (e.g. free buffer bytes)."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._putters: Deque[ContainerPut] = deque()
        self._getters: Deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        if amount <= 0:
            raise SimulationError("put amount must be positive")
        event = ContainerPut(self, amount)
        self._putters.append(event)
        self._settle()
        return event

    def get(self, amount: float) -> ContainerGet:
        if amount <= 0:
            raise SimulationError("get amount must be positive")
        event = ContainerGet(self, amount)
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                put = self._putters[0]
                if self._level + put.amount <= self.capacity:
                    self._putters.popleft()
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if self._getters:
                get = self._getters[0]
                if get.amount <= self._level:
                    self._getters.popleft()
                    self._level -= get.amount
                    get.succeed()
                    progress = True
