"""SessionPool: seed determinism and arrival-model bounds."""

import pytest

from repro.errors import ConfigurationError
from repro.serving import SessionConfig, SessionPool


def test_same_seed_same_pool():
    a = SessionPool(SessionConfig(num_sessions=50, seed=3))
    b = SessionPool(SessionConfig(num_sessions=50, seed=3))
    assert a.sessions() == b.sessions()


def test_different_seed_differs():
    a = SessionPool(SessionConfig(num_sessions=50, seed=3))
    b = SessionPool(SessionConfig(num_sessions=50, seed=4))
    assert a.sessions() != b.sessions()


def test_draws_respect_configured_bounds():
    config = SessionConfig(
        num_sessions=200, seed=11, turns_min=2, turns_max=4,
        context_min_tokens=100, context_max_tokens=200,
        prompt_min_tokens=5, prompt_max_tokens=9,
        decode_min_tokens=3, decode_max_tokens=7,
    )
    pool = SessionPool(config)
    assert len(pool) == 200
    previous_arrival = 0.0
    for session in pool.sessions():
        assert session.arrival_s >= previous_arrival
        previous_arrival = session.arrival_s
        assert 2 <= len(session.turns) <= 4
        first, *rest = session.turns
        assert first.think_s == 0.0
        assert 100 <= first.prompt_tokens <= 200
        for turn in rest:
            assert turn.think_s >= 0.0
            assert 5 <= turn.prompt_tokens <= 9
        for turn in session.turns:
            assert 3 <= turn.decode_tokens <= 7
    assert pool.total_turns == sum(
        len(s.turns) for s in pool.sessions()
    )
    assert pool.total_decode_tokens == sum(
        s.total_decode_tokens for s in pool.sessions()
    )


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_sessions": 0},
        {"arrival_rate": 0.0},
        {"mean_think_s": -1.0},
        {"turns_min": 0},
        {"turns_min": 3, "turns_max": 2},
        {"decode_min_tokens": 0},
    ],
)
def test_bad_config_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        SessionConfig(**kwargs)
