"""Tests for the out-of-core mergesort workload."""

import numpy as np
import pytest

from repro.backends import make_backend
from repro.config import PlatformConfig
from repro.errors import ConfigurationError
from repro.hw.platform import Platform
from repro.units import KiB
from repro.workloads.sort import OutOfCoreSorter, sort_with_backend


def _sorter(backend_name="cam", num_ssds=4, chunk=256 * KiB,
            granularity=128 * KiB):
    platform = Platform(PlatformConfig(num_ssds=num_ssds))
    backend = make_backend(backend_name, platform)
    return OutOfCoreSorter(
        platform, backend, chunk_bytes=chunk, granularity=granularity
    )


def _random_values(count, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(
        np.iinfo(np.int32).min, np.iinfo(np.int32).max,
        size=count, dtype=np.int32,
    )


def test_sorts_correctly_end_to_end():
    sorter = _sorter()
    sorter.stage(_random_values(1 << 17))
    outcome = sorter.run()
    assert outcome.verified
    assert outcome.elements == 1 << 17
    assert outcome.merge_passes == 1  # 512 KiB over 256 KiB chunks


def test_multiple_merge_passes():
    sorter = _sorter(chunk=64 * KiB, granularity=64 * KiB)
    sorter.stage(_random_values(1 << 17))  # 512 KiB -> 8 chunks -> 3 passes
    outcome = sorter.run()
    assert outcome.verified
    assert outcome.merge_passes == 3


def test_already_sorted_input():
    sorter = _sorter()
    sorter.stage(np.arange(1 << 16, dtype=np.int32))
    assert sorter.run().verified


def test_all_equal_input():
    sorter = _sorter()
    sorter.stage(np.full(1 << 16, 42, dtype=np.int32))
    assert sorter.run().verified


def test_run_without_stage_rejected():
    sorter = _sorter()
    with pytest.raises(ConfigurationError):
        sorter.run()


def test_misaligned_input_rejected():
    sorter = _sorter()
    with pytest.raises(ConfigurationError):
        sorter.stage(_random_values(1000))  # not a chunk multiple


def test_chunk_granularity_mismatch_rejected():
    platform = Platform(PlatformConfig(num_ssds=2))
    backend = make_backend("cam", platform)
    with pytest.raises(ConfigurationError):
        OutOfCoreSorter(platform, backend, chunk_bytes=100 * KiB,
                        granularity=64 * KiB)


def test_overlap_beats_serial_for_same_backend():
    base = {"chunk_bytes": 256 * KiB, "granularity": 128 * KiB}
    platform1 = Platform(PlatformConfig(num_ssds=4))
    overlapped = OutOfCoreSorter(
        platform1, make_backend("cam", platform1), overlap=True, **base
    )
    overlapped.stage(_random_values(1 << 17))
    with_overlap = overlapped.run(verify=False).total_time

    platform2 = Platform(PlatformConfig(num_ssds=4))
    serial = OutOfCoreSorter(
        platform2, make_backend("cam", platform2), overlap=False, **base
    )
    serial.stage(_random_values(1 << 17))
    without = serial.run(verify=False).total_time
    assert with_overlap < without


def test_fig10a_cam_beats_posix():
    cam = sort_with_backend("cam", num_elements=1 << 17,
                            chunk_bytes=256 * KiB, granularity=128 * KiB)
    posix = sort_with_backend("posix", num_elements=1 << 17,
                              chunk_bytes=256 * KiB, granularity=128 * KiB)
    assert cam.verified and posix.verified
    speedup = posix.total_time / cam.total_time
    assert 1.2 < speedup < 3.0  # paper: up to ~1.5x


def test_fig10a_cam_matches_spdk():
    cam = sort_with_backend("cam", num_elements=1 << 17,
                            chunk_bytes=256 * KiB, granularity=128 * KiB)
    spdk = sort_with_backend("spdk", num_elements=1 << 17,
                             chunk_bytes=256 * KiB, granularity=128 * KiB)
    assert cam.total_time == pytest.approx(spdk.total_time, rel=0.1)


def test_timing_report_consistency():
    outcome = sort_with_backend("cam", num_elements=1 << 16,
                                chunk_bytes=128 * KiB,
                                granularity=64 * KiB)
    assert outcome.io_time > 0
    assert outcome.compute_time > 0
    assert outcome.total_time > 0
    assert outcome.phase2_time <= outcome.total_time


def test_odd_chunk_counts_sort_correctly():
    """Non-power-of-two run counts: the trailing run carries over."""
    for chunks in (3, 5, 7):
        outcome = sort_with_backend(
            "cam",
            num_elements=chunks * 16384,
            chunk_bytes=64 * KiB,
            granularity=32 * KiB,
            num_ssds=2,
        )
        assert outcome.verified, chunks


def test_merge_pass_count_is_ceil_log2():
    import math

    for chunks in (2, 3, 5, 8, 9):
        outcome = sort_with_backend(
            "cam",
            num_elements=chunks * 16384,
            chunk_bytes=64 * KiB,
            granularity=32 * KiB,
            num_ssds=2,
        )
        assert outcome.merge_passes == math.ceil(math.log2(chunks)), chunks
