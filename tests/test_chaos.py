"""The chaos campaign holds its invariants in quick (CI) mode.

Every scenario — media faults, an offline device, reactor stalls and
crashes, mirrored-device failover, admission overload — must satisfy:
every offered request terminates exactly once (completed, typed error,
or shed), no duplicate completions, no hang, and the mirrored crash
scenario keeps a goodput floor.  The folding lives in
:func:`repro.experiments.extras.run_chaos`; this test keeps it honest
in tier-1, and the CI chaos job publishes the same rows as an artifact.
"""

from repro.experiments.extras import run_chaos


def test_chaos_quick_invariants_hold():
    result = run_chaos(quick=True)
    assert result.tables, "chaos campaign produced no tables"
    seen = set()
    for table in result.tables:
        scenarios = table.column("scenario")
        seen.update(scenarios)
        verdicts = table.column("invariants_ok")
        failed = [
            scenario for scenario, ok in zip(scenarios, verdicts)
            if not ok
        ]
        assert not failed, f"chaos invariants failed: {failed}"
    assert {
        "baseline",
        "media_faults",
        "device_offline",
        "reactor_stall",
        "reactor_crash",
        "overload_4x",
        "mirrored_baseline",
        "mirrored_reactor_crash",
        "resize_during_stall",
        "resize_during_crash",
        "burst_then_idle",
    } <= seen
