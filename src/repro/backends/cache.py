"""Host-memory page cache wrapper (the Ginex / MariusGNN ingredient).

The paper's related work notes that the CPU-managed GNN systems "focus on
utilizing CPU memory to cache data to reduce the data amount to be
accessed in the SSD without considering the SSD access process".
:class:`CachedBackend` composes that idea with any control plane: an LRU
page cache in CPU DRAM sits in front of the SSDs.

* **hit** — the page is served from DRAM (one bus crossing, plus the
  host->GPU copy when the consumer is the GPU);
* **miss** — the underlying backend fetches the page and the cache
  admits it, evicting LRU pages when over capacity.

Writes go through (write-through) and update cached copies so reads
never observe stale data.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional

from repro.backends.base import StorageBackend
from repro.errors import ConfigurationError
from repro.hw.nvme import CQE
from repro.sim.stats import Counter


class CachedBackend(StorageBackend):
    """LRU host cache in front of another backend."""

    def __init__(
        self,
        inner: StorageBackend,
        capacity_bytes: int,
        page_bytes: int = 4096,
        to_gpu: bool = True,
    ):
        if capacity_bytes < page_bytes:
            raise ConfigurationError(
                "cache must hold at least one page"
            )
        super().__init__(inner.platform, reliability=inner.reliability)
        self.inner = inner
        self.model_name = inner.model_name
        self.capacity_pages = capacity_bytes // page_bytes
        self.page_bytes = page_bytes
        self.to_gpu = to_gpu
        #: page id -> None (OrderedDict as LRU: end = most recent)
        self._lru: "OrderedDict[int, None]" = OrderedDict()
        self.hits = Counter(self.env)
        self.misses = Counter(self.env)
        self.evictions = Counter(self.env)
        #: (registry, hit counter, miss counter, hit-rate gauge) once
        #: the live metrics registry has been seen (lazy: the cache may
        #: be built before ``install_metrics`` runs)
        self._instruments = None

    @property
    def name(self) -> str:
        return f"{self.inner.name}+cache"

    def _pages_of(self, lba: int, nbytes: int):
        block = self.platform.config.ssd.block_size
        start = lba * block
        first = start // self.page_bytes
        last = (start + max(1, nbytes) - 1) // self.page_bytes
        return range(first, last + 1)

    def _touch(self, page: int) -> None:
        self._lru[page] = None
        self._lru.move_to_end(page)
        while len(self._lru) > self.capacity_pages:
            self._lru.popitem(last=False)
            self.evictions.add()

    def _cached(self, page: int) -> bool:
        return page in self._lru

    def _publish(self) -> None:
        """Mirror the cache counters into the live metrics registry.

        Pure arithmetic on the registry (never touches the event heap),
        guarded on ``metrics.enabled`` like every hot-path push, so a
        metrics-on run stays bit-identical in simulated history.
        """
        metrics = self.env.metrics
        if not metrics.enabled:
            return
        registry = metrics.registry
        if self._instruments is None or self._instruments[0] is not registry:
            specs = (
                ("cam_cache_hits_total", "counter",
                 "host-cache pages served from DRAM"),
                ("cam_cache_misses_total", "counter",
                 "host-cache pages fetched from the inner backend"),
                ("cam_cache_hit_rate", "gauge",
                 "host-cache hits / lookups so far"),
            )
            children = []
            for name, kind, help_text in specs:
                family = registry.get(name)
                if family is None:
                    family = registry.register(name, kind, help=help_text)
                children.append(family.child())
            self._instruments = (registry, *children)
        _, hits, misses, hit_rate = self._instruments
        hits.set_total(self.hits.total)
        misses.set_total(self.misses.total)
        hit_rate.set(self.hit_rate())

    def io(
        self,
        lba: int,
        nbytes: int,
        is_write: bool = False,
        payload=None,
        target=None,
        target_offset: int = 0,
        ssd_index: Optional[int] = None,
    ) -> Generator:
        pages = list(self._pages_of(lba, nbytes))
        if is_write:
            # write-through: device write, cached copies refreshed
            cqe = yield from self.inner.io(
                lba, nbytes, is_write=True, payload=payload,
                target=target, target_offset=target_offset,
                ssd_index=ssd_index,
            )
            for page in pages:
                if self._cached(page):
                    self._touch(page)
            return cqe

        if all(self._cached(page) for page in pages):
            self.hits.add(len(pages))
            self._publish()
            for page in pages:
                self._touch(page)
            # served from DRAM: one bus crossing (+ copy to GPU)
            yield from self.platform.dram.access(nbytes)
            if self.to_gpu:
                yield from self.platform.gpu.memcpy(nbytes)
            return CQE(command_id=-1)

        self.misses.add(len(pages))
        self._publish()
        cqe = yield from self.inner.io(
            lba, nbytes, is_write=False, payload=payload,
            target=target, target_offset=target_offset,
            ssd_index=ssd_index,
        )
        # admission costs one DRAM crossing for the staged copy
        yield from self.platform.dram.access(nbytes)
        for page in pages:
            self._touch(page)
        return cqe

    def hit_rate(self) -> float:
        total = self.hits.total + self.misses.total
        return self.hits.total / total if total else 0.0
