"""cam-top: a per-reactor / per-SSD console view of a telemetry run.

Renders the :class:`~repro.obs.sampler.MetricsSampler`'s in-memory time
series as the familiar ``top``-style tables — one row per reactor
(busy fraction, requests, owned SSDs, state) and one per SSD (queue
occupancy, in-flight commands, health) plus a headline line (sim time,
batches, goodput, retries/shed).  Works from a finished run's sampler,
or replays the history sample-by-sample with ``--follow`` to watch the
run unfold.

The demo mode drives a fig08-scale workload (8 SSDs, doorbell batches
of 8192 x 4 KiB reads) through :class:`~repro.core.control.CamManager`
with the full telemetry stack attached::

    PYTHONPATH=src python -m repro.tools.top --demo
    PYTHONPATH=src python -m repro.tools.top --demo --follow
    PYTHONPATH=src python -m repro.tools.top --demo \
        --openmetrics metrics.txt --json metrics.json
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import Dict, List, Optional, Tuple

_LABELED = re.compile(r"^(?P<name>[^{]+)\{(?P<labels>[^}]*)\}$")


def _split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """``"name{a=1,b=2}"`` -> ``("name", {"a": "1", "b": "2"})``."""
    match = _LABELED.match(key)
    if not match:
        return key, {}
    labels = {}
    body = match.group("labels")
    if body:
        for pair in body.split(","):
            label, _, value = pair.partition("=")
            labels[label] = value
    return match.group("name"), labels


def _by_label(
    snapshot: Dict[str, object], metric: str, label: str
) -> Dict[str, float]:
    """All series of ``metric`` keyed by one label's value."""
    out: Dict[str, float] = {}
    for key, value in snapshot.items():
        name, labels = _split_key(key)
        if name == metric and label in labels:
            out[labels[label]] = float(value)
    return out


def _scalar(
    snapshot: Dict[str, object], key: str, default: float = 0.0
) -> float:
    value = snapshot.get(key)
    return default if value is None else float(value)


def _sum_metric(snapshot: Dict[str, object], metric: str) -> float:
    total = 0.0
    for key, value in snapshot.items():
        name, _ = _split_key(key)
        if name == metric:
            total += float(value)
    return total


_HEALTH_NAMES = {0: "healthy", 1: "degraded", 2: "tripped", 3: "offline"}


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_sample(
    sample: Tuple[float, Dict[str, object]],
    previous: Optional[Tuple[float, Dict[str, object]]] = None,
    ssds_by_reactor: Optional[Dict[str, int]] = None,
) -> str:
    """Render one history sample as the cam-top screen.

    ``previous`` (an earlier sample) adds rate columns — goodput and
    per-reactor request rate over the inter-sample window.
    """
    now, snap = sample
    lines: List[str] = []

    batches = _sum_metric(snap, "cam_batches_total")
    requests = _sum_metric(snap, "cam_requests_total")
    total_bytes = _sum_metric(snap, "cam_bytes_total")
    goodput = ""
    if previous is not None:
        t0, prev = previous
        if now > t0:
            rate = (
                total_bytes - _sum_metric(prev, "cam_bytes_total")
            ) / (now - t0)
            goodput = f"  goodput {rate / 1e9:7.2f} GB/s"
    retries = _scalar(snap, "reliability_retries_total")
    shed = _scalar(snap, "admission_shed_total")
    dropped = _scalar(snap, "tracer_dropped_spans")
    lines.append(
        f"cam-top  t={now * 1e3:9.4f} ms  batches {batches:6.0f}  "
        f"requests {requests:9.0f}  bytes {total_bytes / 1e6:9.1f} MB"
        f"{goodput}"
    )
    extras = []
    if retries:
        extras.append(f"retries {retries:.0f}")
    if shed:
        extras.append(f"shed {shed:.0f}")
    if _scalar(snap, "watchdog_timeouts_total"):
        extras.append(
            f"watchdog {_scalar(snap, 'watchdog_timeouts_total'):.0f}"
        )
    if _scalar(snap, "breaker_trips_total"):
        extras.append(
            f"breaker trips {_scalar(snap, 'breaker_trips_total'):.0f}"
        )
    if dropped:
        extras.append(f"dropped spans {dropped:.0f}")
    if extras:
        lines.append("  " + "  ".join(extras))

    busy = _by_label(snap, "reactor_busy_fraction", "reactor")
    crashed = _by_label(snap, "reactor_crashed", "reactor")
    reactor_reqs = _by_label(snap, "reactor_requests_total", "reactor")
    if busy:
        lines.append("")
        lines.append(
            f"  {'REACTOR':>7}  {'BUSY':>6}  {'':20}  "
            f"{'REQUESTS':>10}  {'SSDS':>4}  STATE"
        )
        prev_reqs = (
            _by_label(previous[1], "reactor_requests_total", "reactor")
            if previous is not None
            else {}
        )
        for rid in sorted(busy, key=lambda r: (len(r), r)):
            fraction = busy[rid]
            state = "offline" if crashed.get(rid) else "online"
            owned = (
                str(ssds_by_reactor.get(rid, ""))
                if ssds_by_reactor
                else "-"
            )
            reqs = reactor_reqs.get(rid, 0.0)
            rate = ""
            if previous is not None and rid in prev_reqs and (
                sample[0] > previous[0]
            ):
                per_sec = (reqs - prev_reqs[rid]) / (
                    sample[0] - previous[0]
                )
                rate = f" ({per_sec / 1e3:7.1f} kreq/s)"
            lines.append(
                f"  {rid:>7}  {fraction:6.1%}  {_bar(fraction)}  "
                f"{reqs:10.0f}  {owned:>4}  {state}{rate}"
            )

    sq = _by_label(snap, "ssd_sq_occupancy", "ssd")
    if sq:
        cq = _by_label(snap, "ssd_cq_occupancy", "ssd")
        inflight = _by_label(snap, "ssd_inflight_commands", "ssd")
        health = _by_label(snap, "ssd_health_state", "ssd")
        lines.append("")
        lines.append(
            f"  {'SSD':>5}  {'SQ':>5}  {'CQ':>5}  {'INFLIGHT':>8}  HEALTH"
        )
        for sid in sorted(sq, key=lambda s: (len(s), s)):
            state = _HEALTH_NAMES.get(int(health.get(sid, 0)), "?")
            lines.append(
                f"  {sid:>5}  {sq[sid]:5.0f}  {cq.get(sid, 0):5.0f}  "
                f"{inflight.get(sid, 0):8.0f}  {state}"
            )

    # serving pane: present only when a ServingEngine run registered
    # its families (see repro.serving.metrics)
    if "serving_active_sessions" in snap:
        active = _scalar(snap, "serving_active_sessions")
        decoding = _scalar(snap, "serving_decoding_sessions")
        turns = _scalar(snap, "serving_turns_total")
        ttft_p99 = _scalar(snap, "serving_ttft_seconds:p99")
        hit_rate = _scalar(snap, "serving_kv_hit_rate")
        resident = _scalar(snap, "serving_kv_resident_blocks")
        tokens = _scalar(snap, "serving_tokens_total")
        rate = _scalar(snap, "serving_tokens_per_second")
        if previous is not None and now > previous[0]:
            # live window rate beats the run-cumulative gauge
            rate = (
                tokens - _scalar(previous[1], "serving_tokens_total")
            ) / (now - previous[0])
        lines.append("")
        lines.append(
            f"  SERVING  sessions {active:5.0f} ({decoding:.0f} "
            f"decoding)  turns {turns:6.0f}  "
            f"ttft p99 {ttft_p99 * 1e3:8.3f} ms"
        )
        lines.append(
            f"           tokens/s {rate:10.0f}  kv hit "
            f"{hit_rate:6.1%}  resident blocks {resident:6.0f}"
        )

    # gpu-cache pane: present only when a GpuCache published its
    # families (see repro.cache.gpucache)
    if "cam_gpucache_hits_total" in snap:
        g_hits = _scalar(snap, "cam_gpucache_hits_total")
        g_misses = _scalar(snap, "cam_gpucache_misses_total")
        g_rate = _scalar(snap, "cam_gpucache_hit_rate")
        g_lines = _scalar(snap, "cam_gpucache_resident_lines")
        g_evict = _scalar(snap, "cam_gpucache_evictions_total")
        ra_issued = _scalar(snap, "cam_gpucache_readahead_issued_total")
        ra_used = _scalar(snap, "cam_gpucache_readahead_used_total")
        ra_acc = _scalar(snap, "cam_gpucache_readahead_accuracy")
        throttled = _scalar(snap, "cam_gpucache_throttled_streams")
        lines.append("")
        lines.append(
            f"  GPUCACHE hit {g_rate:6.1%} ({g_hits:.0f}/"
            f"{g_hits + g_misses:.0f})  lines {g_lines:6.0f}  "
            f"evictions {g_evict:6.0f}"
        )
        lines.append(
            f"           readahead {ra_used:.0f}/{ra_issued:.0f} used "
            f"(accuracy {ra_acc:6.1%})  throttled streams "
            f"{throttled:.0f}"
        )

    # trace pane: present only when causal tracing is on (the sampler
    # publishes trace_* gauges whenever env.tracer is enabled)
    if "trace_active_contexts" in snap:
        active_ctx = _scalar(snap, "trace_active_contexts")
        done_ctx = _scalar(snap, "trace_completed_requests")
        exemplars = _scalar(snap, "trace_exemplar_count")
        dropped_spans = _scalar(snap, "tracer_dropped_spans")
        lines.append("")
        lines.append(
            f"  TRACE    active contexts {active_ctx:5.0f}  "
            f"completed {done_ctx:7.0f}  dropped spans "
            f"{dropped_spans:6.0f}  exemplars {exemplars:4.0f}"
        )

    # net pane: present only when the disaggregated tier published its
    # cam_net_* families (see repro.net)
    link_transfers = _by_label(snap, "cam_net_transfers_total", "link")
    if link_transfers:
        link_bytes = _by_label(snap, "cam_net_bytes_total", "link")
        link_retrans = _by_label(snap, "cam_net_retransmits_total", "link")
        link_drops = _by_label(snap, "cam_net_drops_total", "link")
        link_down = _by_label(snap, "cam_net_link_down", "link")
        lines.append("")
        lines.append(
            f"  {'NET LINK':>9}  {'MSGS':>8}  {'MB':>8}  "
            f"{'RETRANS':>7}  {'DROPS':>6}  STATE"
        )
        for link in sorted(link_transfers, key=lambda l: (len(l), l)):
            state = "DOWN" if link_down.get(link) else "up"
            lines.append(
                f"  {link:>9}  {link_transfers[link]:8.0f}  "
                f"{link_bytes.get(link, 0) / 1e6:8.1f}  "
                f"{link_retrans.get(link, 0):7.0f}  "
                f"{link_drops.get(link, 0):6.0f}  {state}"
            )
        hedged = _scalar(snap, "cam_net_hedged_reads_total")
        wins = _scalar(snap, "cam_net_hedge_wins_total")
        timeouts = _scalar(snap, "cam_net_remote_timeouts_total")
        if "cam_net_tier_hits_total" in snap:
            t_hits = _scalar(snap, "cam_net_tier_hits_total")
            t_misses = _scalar(snap, "cam_net_tier_misses_total")
            lookups = t_hits + t_misses
            mode = (
                "DEGRADED"
                if _scalar(snap, "cam_net_tier_degraded")
                else "normal"
            )
            lines.append(
                f"  TIER {mode:>8}  hit "
                f"{(t_hits / lookups) if lookups else 0.0:6.1%}  dirty "
                f"{_scalar(snap, 'cam_net_tier_dirty_pages'):5.0f}  "
                f"queued {_scalar(snap, 'cam_net_tier_queued_writes_total'):5.0f}  "
                f"resyncs {_scalar(snap, 'cam_net_tier_resyncs_total'):3.0f}"
            )
        lines.append(
            f"  REMOTE hedged {hedged:.0f} (wins {wins:.0f})  "
            f"timeouts {timeouts:.0f}  degraded writes "
            f"{_scalar(snap, 'cam_net_degraded_writes_total'):.0f}"
        )
    return "\n".join(lines)


def _average_busy(history) -> Dict[str, float]:
    """Window-weighted mean busy fraction per reactor over the whole
    retained history (== total busy seconds / total sampled seconds)."""
    busy_seconds: Dict[str, float] = {}
    total = 0.0
    prev_time = None
    for time, snap in history:
        if prev_time is None:
            prev_time = time
            continue
        window = time - prev_time
        prev_time = time
        if window <= 0:
            continue
        total += window
        for rid, fraction in _by_label(
            snap, "reactor_busy_fraction", "reactor"
        ).items():
            busy_seconds[rid] = (
                busy_seconds.get(rid, 0.0) + fraction * window
            )
    if total <= 0:
        return {}
    return {rid: value / total for rid, value in busy_seconds.items()}


def render_top(sampler, manager=None) -> str:
    """Render the final state of a sampler's history (one screen).

    Counters and queue occupancy come from the latest sample; the busy
    column shows each reactor's *run-average* fraction (the last
    sample's instantaneous window is usually the idle tail after the
    final completion, which would always read 0%).
    """
    if not sampler.history:
        return "cam-top: no samples recorded"
    latest = sampler.history[-1]
    average = _average_busy(sampler.history)
    if average:
        time, snap = latest
        snap = dict(snap)
        for rid, fraction in average.items():
            snap[f"reactor_busy_fraction{{reactor={rid}}}"] = fraction
        latest = (time, snap)
    previous = sampler.history[0] if len(sampler.history) > 1 else None
    ssds_by_reactor = None
    if manager is not None:
        pool = manager.driver.pool
        ssds_by_reactor = {
            str(reactor.reactor_id): pool.ssds_on_reactor(
                reactor.reactor_id
            )
            for reactor in pool.reactors
        }
    return render_sample(
        latest, previous=previous, ssds_by_reactor=ssds_by_reactor
    )


def follow(sampler, manager=None, every: int = 1, stream=None) -> int:
    """Replay the history, printing one screen per ``every`` samples."""
    stream = stream or sys.stdout
    samples = list(sampler.history)
    screens = 0
    previous = None
    for index, sample in enumerate(samples):
        if index % every == 0 or index == len(samples) - 1:
            print(
                render_sample(sample, previous=previous), file=stream
            )
            print("-" * 72, file=stream)
            screens += 1
        previous = sample
    return screens


# -- demo workload ----------------------------------------------------

def run_demo(
    num_ssds: int = 8,
    batches: int = 6,
    requests: int = 8192,
    granularity: int = 4096,
    interval: float = 50e-6,
    reliability: bool = True,
):
    """Fig08-scale batched reads with the full telemetry stack attached.

    Returns ``(manager, metrics, sampler)`` after the run finished.
    """
    import numpy as np

    from repro.config import PlatformConfig
    from repro.core.control import BatchRequest, CamManager
    from repro.hw.platform import Platform
    from repro.obs import MetricsSampler, install_metrics

    platform = Platform(
        PlatformConfig(num_ssds=num_ssds), functional=False
    )
    env = platform.env
    metrics = install_metrics(env)
    bundle = None
    if reliability:
        from repro.reliability import Reliability

        bundle = Reliability(platform)
    manager = CamManager(platform, coalesce=True, reliability=bundle)
    sampler = MetricsSampler(metrics, interval=interval, manager=manager)
    for index in range(batches):
        lbas = (
            np.arange(requests, dtype=np.int64) * 3 + index
        ) % (1 << 20)
        env.run(
            manager.ring(
                BatchRequest(
                    lbas=lbas, granularity=granularity, is_write=False
                )
            )
        )
    sampler.stop()
    sampler.sample_now()  # final state after the last completion
    return manager, metrics, sampler


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cam-top: live per-reactor/per-SSD telemetry view"
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="run the fig08-scale instrumented demo workload",
    )
    parser.add_argument("--num-ssds", type=int, default=8)
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument("--requests", type=int, default=8192)
    parser.add_argument(
        "--no-reliability", action="store_true",
        help="demo without the reliability bundle",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="replay the whole history instead of the final screen",
    )
    parser.add_argument(
        "--every", type=int, default=8,
        help="with --follow, one screen per N samples (default 8)",
    )
    parser.add_argument(
        "--openmetrics", metavar="PATH",
        help="also export the OpenMetrics text exposition",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also export the JSON metrics snapshot",
    )
    args = parser.parse_args(argv)

    if not args.demo:
        parser.error(
            "only --demo mode is available from the command line; "
            "library callers pass their own sampler to render_top()"
        )

    manager, metrics, sampler = run_demo(
        num_ssds=args.num_ssds,
        batches=args.batches,
        requests=args.requests,
        reliability=not args.no_reliability,
    )
    if args.follow:
        follow(sampler, manager=manager, every=max(1, args.every))
    print(render_top(sampler, manager=manager))
    if args.openmetrics:
        from repro.obs.metrics_export import export_openmetrics

        lines = export_openmetrics(metrics.registry, args.openmetrics)
        print(f"\nwrote {lines} OpenMetrics samples to {args.openmetrics}")
    if args.json:
        from repro.obs.metrics_export import export_metrics_json

        export_metrics_json(metrics.registry, args.json)
        print(f"wrote JSON snapshot to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
