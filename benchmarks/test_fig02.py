"""Benchmark: regenerate Fig. 2 (kernel I/O stack throughput)."""


def test_fig02_io_stacks(check):
    def verify(result):
        table = result.table("4 KiB random read (GB/s)")
        values = table.column("measured (DES)")
        assert values == sorted(values)  # POSIX..poll..SSD max ordering

    check("fig02", verify)
