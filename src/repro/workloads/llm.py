"""ZeRO-Infinity-style LLM training with SSD-offloaded optimizer state.

Paper Section II: "LLM training system Zero-infinity spends more than 80%
of time on the update phase that mainly consists of SSD accesses with
only ~70% SSD bandwidth utilization".

Model: each step is (1) forward+backward compute on the GPU, then (2) an
**update phase** that streams parameter/optimizer shards from the SSDs,
applies the optimizer on the fly, and writes them back — 2x the model
bytes read + written per step.

* the **cpu-managed baseline** (libaio bounce) runs the phases serially
  and through CPU memory, reproducing the >80 % update share;
* **CAM** streams shard ``i+1`` while shard ``i`` updates, overlapping
  the update phase with itself and with the next step's compute.

Functional: shard contents are real float32 parameters; after a step the
written-back values are verified to be ``param - lr * grad``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.backends.base import StorageBackend, make_backend
from repro.errors import ConfigurationError
from repro.hw.platform import Platform
from repro.units import MiB
from repro.workloads.pipelines import run_two_stage_pipeline
from repro.workloads.vdisk import VirtualDisk

#: fraction of tensor peak the fwd/bwd kernels sustain
_TRAIN_EFFICIENCY = 0.40


@dataclass
class LlmStepResult:
    """Outcome of a few training steps."""

    steps: int
    total_time: float
    compute_time: float
    update_time: float
    bytes_streamed: int
    verified: bool

    @property
    def update_fraction(self) -> float:
        total = self.compute_time + self.update_time
        return self.update_time / total if total else 0.0


class LlmOffloadTrainer:
    """Optimizer-state-on-SSD training steps."""

    def __init__(
        self,
        platform: Platform,
        backend: StorageBackend,
        model_bytes: int = 64 * MiB,
        shard_bytes: int = 8 * MiB,
        flops_per_step: float = 2.0e12,
        learning_rate: float = 0.01,
        overlap: Optional[bool] = None,
        seed: int = 0,
    ):
        if model_bytes % shard_bytes:
            raise ConfigurationError(
                "model_bytes must be a multiple of shard_bytes"
            )
        self.platform = platform
        self.backend = backend
        self.model_bytes = model_bytes
        self.shard_bytes = shard_bytes
        self.flops_per_step = flops_per_step
        self.learning_rate = learning_rate
        self.overlap = (
            backend.name == "cam" if overlap is None else overlap
        )
        self.rng = np.random.default_rng(seed)
        granularity = min(512 * 1024, shard_bytes)
        self.granularity = granularity
        platform.stripe_blocks = granularity // platform.config.ssd.block_size
        self.vdisk = VirtualDisk(platform)
        self._params: Optional[np.ndarray] = None

    @property
    def num_shards(self) -> int:
        return self.model_bytes // self.shard_bytes

    def stage_parameters(self) -> None:
        params = self.rng.standard_normal(
            self.model_bytes // 4
        ).astype(np.float32)
        self._params = params
        self.vdisk.write_array(0, params)

    def run(self, steps: int = 3, verify: bool = True) -> LlmStepResult:
        if self._params is None:
            raise ConfigurationError("stage_parameters() first")
        env = self.platform.env
        gpu = self.platform.gpu
        compute_per_step = self.flops_per_step / (
            gpu.config.tensor_flops * _TRAIN_EFFICIENCY
        )
        shard_values = self.shard_bytes // 4
        update_time = 0.0
        compute_time = 0.0
        grad = np.float32(0.5)  # constant synthetic gradient
        start = env.now

        def one_step(step: int) -> Generator:
            nonlocal update_time, compute_time
            begin = env.now
            yield env.timeout(compute_per_step)  # forward + backward
            compute_time += env.now - begin
            begin = env.now

            def shard_io(index: int) -> Generator:
                yield from self.backend.bulk_io(
                    self.shard_bytes, self.granularity, is_write=False
                )

            def shard_update(index: int) -> Generator:
                offset = index * self.shard_bytes
                values = self.vdisk.read_array(offset, shard_values,
                                               np.float32)
                values = values - np.float32(self.learning_rate) * grad
                # optimizer math is HBM-bound over the shard
                yield env.timeout(
                    gpu.kernel_time(bytes_accessed=2 * self.shard_bytes)
                )
                self.vdisk.write_array(offset, values)
                yield from self.backend.bulk_io(
                    self.shard_bytes, self.granularity, is_write=True
                )

            run_two_stage_pipeline(
                env, self.num_shards, shard_io, shard_update,
                overlap=self.overlap,
            )
            update_time += env.now - begin

        def driver() -> Generator:
            for step in range(steps):
                yield from one_step(step)

        env.run(env.process(driver()))

        verified = True
        if verify:
            got = self.vdisk.read_array(0, shard_values, np.float32)
            expected = self._params[:shard_values] - np.float32(
                steps * self.learning_rate
            ) * grad
            verified = bool(np.allclose(got, expected, atol=1e-5))
        return LlmStepResult(
            steps=steps,
            total_time=env.now - start,
            compute_time=compute_time,
            update_time=update_time,
            bytes_streamed=steps * 2 * self.model_bytes,
            verified=verified,
        )


def llm_with_backend(
    backend_name: str,
    steps: int = 3,
    num_ssds: int = 12,
    model_bytes: int = 32 * MiB,
    shard_bytes: int = 4 * MiB,
    seed: int = 41,
    **kwargs,
) -> LlmStepResult:
    """Convenience: stage parameters and run a few offloaded steps."""
    from repro.config import PlatformConfig

    platform = Platform(PlatformConfig(num_ssds=num_ssds))
    backend_kwargs = {}
    if backend_name in ("posix", "libaio"):
        backend_kwargs["to_gpu"] = True
    backend = make_backend(backend_name, platform, **backend_kwargs)
    trainer = LlmOffloadTrainer(
        platform, backend, model_bytes=model_bytes,
        shard_bytes=shard_bytes, seed=seed, **kwargs,
    )
    trainer.stage_parameters()
    return trainer.run(steps=steps)
