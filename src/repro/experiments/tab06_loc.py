"""Table VI: lines of code of real applications per SSD management.

Paper: CAM implementations are as compact as BaM's synchronous code
(GNN: 66 vs 65) and clearly shorter than traditional POSIX (sort: 510 vs
644) or GDS/BaM GEMM (130 vs 158/165).  Here we count the runnable
miniature applications under ``examples/loc/`` — written against this
library's public APIs — and verify the same *relations* hold.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.experiments.report import ExperimentResult, Table

#: (workload, management) -> example file
_PROGRAMS = {
    ("Sort", "POSIX I/O"): "sort_posix.py",
    ("Sort", "CAM"): "sort_cam.py",
    ("GEMM", "GDS"): "gemm_gds.py",
    ("GEMM", "BaM"): "gemm_bam.py",
    ("GEMM", "CAM"): "gemm_cam.py",
    ("GNN", "BaM"): "gnn_bam.py",
    ("GNN", "CAM"): "gnn_cam.py",
}

#: the paper's Table VI values, for side-by-side reporting
_PAPER = {
    ("Sort", "POSIX I/O"): 644,
    ("Sort", "CAM"): 510,
    ("GEMM", "GDS"): 158,
    ("GEMM", "BaM"): 165,
    ("GEMM", "CAM"): 130,
    ("GNN", "BaM"): 65,
    ("GNN", "CAM"): 66,
}


def _loc_dir() -> Optional[Path]:
    """Locate examples/loc relative to the repository root."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "examples" / "loc"
        if candidate.is_dir():
            return candidate
    return None


def count_code_lines(path: Path) -> int:
    """Non-blank, non-comment, non-docstring lines."""
    lines = path.read_text().splitlines()
    count = 0
    in_docstring = False
    for line in lines:
        stripped = line.strip()
        if in_docstring:
            if stripped.endswith('"""') or stripped.endswith("'''"):
                in_docstring = False
            continue
        if stripped.startswith('"""') or stripped.startswith("'''"):
            closed = (
                len(stripped) > 3
                and (stripped.endswith('"""') or stripped.endswith("'''"))
            )
            if not closed:
                in_docstring = True
            continue
        if not stripped or stripped.startswith("#"):
            continue
        count += 1
    return count


def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="tab06",
        title="Lines of code per workload per SSD management",
        paper_expectation=(
            "CAM ~= BaM for GNN; CAM < POSIX for sort; CAM < BaM and "
            "CAM < GDS for GEMM"
        ),
    )
    table = result.add_table(
        Table(
            "code lines (examples/loc, comments/docstrings excluded)",
            ["workload", "management", "our_loc", "paper_loc"],
        )
    )
    loc_dir = _loc_dir()
    if loc_dir is None:
        result.note("examples/loc not found; reporting paper values only")
        for (workload, management), paper in _PAPER.items():
            table.add_row(workload, management, 0, paper)
        return result

    counts = {}
    for key, filename in _PROGRAMS.items():
        path = loc_dir / filename
        counts[key] = count_code_lines(path) if path.exists() else 0
        table.add_row(key[0], key[1], counts[key], _PAPER[key])

    relations = result.add_table(
        Table("relations the paper claims", ["relation", "holds"])
    )
    relations.add_row(
        "Sort: CAM < POSIX",
        counts[("Sort", "CAM")] < counts[("Sort", "POSIX I/O")],
    )
    relations.add_row(
        "GEMM: CAM < BaM",
        counts[("GEMM", "CAM")] < counts[("GEMM", "BaM")],
    )
    relations.add_row(
        "GEMM: CAM < GDS",
        counts[("GEMM", "CAM")] < counts[("GEMM", "GDS")],
    )
    relations.add_row(
        "GNN: |CAM - BaM| small (sync-like API)",
        abs(counts[("GNN", "CAM")] - counts[("GNN", "BaM")]) <= 8,
    )
    return result
