"""Reliability subsystem: retries, timeouts, device health, replication.

The CAM paper's control planes assume devices that always answer; this
package adds the machinery real deployments need (ISSUE 2):

* :class:`~repro.reliability.policy.RetryPolicy` — bounded, budgeted
  exponential backoff with deterministic jitter in sim-time;
* :class:`~repro.reliability.watchdog.CompletionWatchdog` — deadlines on
  completion waits, turning hangs into typed errors;
* :class:`~repro.reliability.health.HealthTracker` — per-SSD health
  states with a circuit breaker;
* :class:`~repro.reliability.manager.Reliability` — the bundle control
  planes consume (pass ``reliability=`` to any backend factory);
* :class:`~repro.reliability.replica.ReplicatedBackend` — mirror pairs
  with degraded reads and hot-spare rebuild, composable under any
  backend;
* :class:`~repro.reliability.admission.AdmissionController` — bounded
  in-flight work with deterministic shedding
  (:class:`~repro.errors.OverloadError`) and degraded-mode batch
  shrinking (ISSUE 4).
"""

from repro.reliability.admission import AdmissionController
from repro.reliability.health import (
    DeviceHealth,
    HealthState,
    HealthTracker,
)
from repro.reliability.manager import Reliability
from repro.reliability.policy import RetryPolicy
from repro.reliability.replica import ReplicatedBackend
from repro.reliability.watchdog import CompletionWatchdog

__all__ = [
    "AdmissionController",
    "CompletionWatchdog",
    "DeviceHealth",
    "HealthState",
    "HealthTracker",
    "Reliability",
    "ReplicatedBackend",
    "RetryPolicy",
]
