"""Causal request tracing & critical-path attribution (ISSUE 10).

Covers the tentpole acceptance criteria end to end:

* stage attribution partitions the request wall exactly (coverage >= 95%
  on a full serving run, with the residue reported as ``untracked``);
* the seeded fault scenarios are correctly fingered — an SSD media
  degrade makes ``media`` the dominant tail stage, a fabric brownout
  makes ``fabric`` dominant;
* histogram exemplars carry trace ids that resolve back into a
  waterfall crossing at least one flow link;
* orphan spans (parent evicted out of the ring, children surviving)
  are detected, not silently re-rooted;
* the trace CSV round-trips arbitrary tag content (commas, quotes,
  newlines, numpy scalars) without corruption.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PlatformConfig
from repro.core.control import BatchRequest, CamManager
from repro.hw.platform import Platform
from repro.obs import (
    CriticalPathAnalyzer,
    TraceAnalyzer,
    install_metrics,
    install_tracer,
    mint_context,
)
from repro.obs.causal import UNTRACKED, link_of, stage_of
from repro.obs.export import export_trace_csv, load_trace_csv
from repro.obs.tracer import Span, Tracer
from repro.tools.trace_cli import run_demo

EXACT = 1e-12


class _Clock:
    def __init__(self):
        self.now = 0.0


# -- context lifecycle -------------------------------------------------

def test_mint_context_returns_none_when_tracing_is_off():
    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    assert mint_context(platform.env.tracer, "anything") is None


def test_mint_context_returns_none_when_causal_is_off():
    clock = _Clock()
    tracer = Tracer(clock, causal=False)
    assert mint_context(tracer, "batch") is None
    assert tracer.contexts_started == 0


def test_context_lifecycle_counters_and_idempotent_finish():
    clock = _Clock()
    tracer = Tracer(clock)
    ctx = mint_context(tracer, "unit", origin="test")
    assert (tracer.contexts_started, tracer.contexts_active,
            tracer.contexts_completed) == (1, 1, 0)
    clock.now = 2.0
    ctx.finish(outcome="done")
    ctx.finish()  # error-path double-finish must be a no-op
    assert (tracer.contexts_started, tracer.contexts_active,
            tracer.contexts_completed) == (1, 0, 1)
    root = list(tracer.spans())[-1]
    assert root.name == "request"
    assert root.tags["kind"] == "unit"
    assert root.tags["outcome"] == "done"
    assert root.duration == 2.0


def test_child_spans_inherit_trace_id_and_root_parent():
    clock = _Clock()
    tracer = Tracer(clock)
    ctx = mint_context(tracer, "unit")
    span = ctx.begin("nvme_io", lba=7)
    clock.now = 1.0
    ctx.end(span)
    ctx.finish()
    assert span.tags["trace_id"] == ctx.trace_id
    assert span.parent_id == ctx.root.span_id


def test_stage_map_covers_the_span_vocabulary():
    assert stage_of("request") is None        # container
    assert stage_of("batch") is None          # container
    assert stage_of("nvme_io") == "media"
    assert stage_of("fabric_transfer") == "fabric"
    assert stage_of("never_heard_of_it") == "other"


# -- attribution -------------------------------------------------------

def _cam_run(requests=16):
    platform = Platform(PlatformConfig(num_ssds=2), functional=False)
    tracer = install_tracer(platform.env)
    manager = CamManager(platform)
    lbas = np.arange(requests, dtype=np.int64) * 8
    batch = BatchRequest(lbas=lbas, granularity=4096, is_write=False)
    platform.env.run(manager.ring(batch))
    return tracer


def test_attribution_partitions_the_request_wall_exactly():
    tracer = _cam_run()
    analyzer = CriticalPathAnalyzer(tracer)
    (tid,) = analyzer.request_ids()
    root = analyzer.root(tid)
    attributed = analyzer.attribute(tid)
    assert abs(sum(attributed.values()) - root.duration) < EXACT
    # a bare CAM batch is fully covered: reactor work, media, PCIe
    assert UNTRACKED not in attributed
    assert attributed["media"] > 0
    assert attributed["reactor_cpu"] > 0
    assert analyzer.coverage(tid) == pytest.approx(1.0)


def test_deeper_spans_win_overlapping_segments():
    """nvme_io under the batch must beat the engine-level wait that
    encloses it — exclusive attribution, not double counting."""
    clock = _Clock()
    tracer = Tracer(clock)
    ctx = mint_context(tracer, "unit")
    wait = ctx.begin("load_wait")
    inner = tracer.begin("nvme_io", parent=wait,
                         trace_id=ctx.trace_id)
    clock.now = 3.0
    tracer.end(inner)
    clock.now = 4.0
    ctx.end(wait)
    ctx.finish()
    analyzer = CriticalPathAnalyzer(tracer)
    attributed = analyzer.attribute(ctx.trace_id)
    assert attributed["media"] == pytest.approx(3.0)
    assert attributed["io_wait"] == pytest.approx(1.0)
    assert sum(attributed.values()) == pytest.approx(4.0)


def test_untracked_residue_is_reported_not_absorbed():
    clock = _Clock()
    tracer = Tracer(clock)
    ctx = mint_context(tracer, "unit")
    span = ctx.begin("nvme_io")
    clock.now = 1.0
    ctx.end(span)
    clock.now = 4.0  # 3 idle seconds no stage span covers
    ctx.finish()
    analyzer = CriticalPathAnalyzer(tracer)
    attributed = analyzer.attribute(ctx.trace_id)
    assert attributed[UNTRACKED] == pytest.approx(3.0)
    assert analyzer.coverage(ctx.trace_id) == pytest.approx(0.25)


def test_serving_turn_coverage_meets_the_acceptance_floor():
    """Acceptance: stage attribution sums to >= 95% of turn latency on
    a full serving workload (the residue is reported as untracked)."""
    _, tracer, result = run_demo("base", num_sessions=20)
    analyzer = CriticalPathAnalyzer(tracer)
    roots = analyzer.requests(kind="serving_turn")
    assert len(roots) == result.turns_done
    for root in roots:
        tid = int(root.tags["trace_id"])
        attributed = analyzer.attribute(tid)
        assert abs(sum(attributed.values()) - root.duration) < 1e-9
        assert analyzer.coverage(tid) >= 0.95


def test_flow_links_tie_the_coalesced_batch_to_its_request():
    tracer = _cam_run()
    analyzer = CriticalPathAnalyzer(tracer)
    (tid,) = analyzer.request_ids()
    batch = [s for s in tracer.spans() if s.name == "batch"]
    assert len(batch) == 1
    assert link_of(batch[0]) == (tid,)
    rows = analyzer.waterfall(tid)
    linked = [r for r in rows if tid in r["links"]]
    assert linked, "waterfall lost the batch flow link"


# -- seeded bottleneck scenarios ---------------------------------------

def test_tail_attribution_fingers_ssd_media_degradation():
    _, tracer, _ = run_demo("ssd-degrade")
    cohorts = CriticalPathAnalyzer(tracer).attribute_cohorts(
        kind="serving_turn"
    )
    assert cohorts["dominant"] == "media"
    assert cohorts["delta_s"]["media"] > 0


def test_tail_attribution_fingers_fabric_brownout():
    _, tracer, _ = run_demo("fabric-brownout")
    cohorts = CriticalPathAnalyzer(tracer).attribute_cohorts(
        kind="serving_turn"
    )
    assert cohorts["dominant"] == "fabric"
    assert cohorts["delta_s"]["fabric"] > 0


# -- exemplars ---------------------------------------------------------

def test_every_latency_family_resolves_an_exemplar_to_a_waterfall():
    """Acceptance: each cam_* latency family surfaces an exemplar
    trace id that resolves into a waterfall with >= 1 flow link."""
    from repro.backends.base import make_backend
    from repro.serving import (
        KvBlockStore,
        KvLayout,
        ServingEngine,
        SessionConfig,
        SessionPool,
    )

    platform = Platform(PlatformConfig(num_ssds=4), functional=False)
    metrics = install_metrics(platform.env)
    tracer = install_tracer(platform.env)
    backend = make_backend("cam", platform)
    store = KvBlockStore(platform, KvLayout(), capacity_blocks=12)
    pool = SessionPool(
        SessionConfig(num_sessions=20, seed=17, mean_think_s=5e-3,
                      turns_min=2, turns_max=3)
    )
    ServingEngine(platform, backend, store, pool,
                  max_concurrent_decodes=16).run()

    exemplars = metrics.registry.exemplars()
    families = {key.split("{")[0] for key in exemplars}
    assert "cam_batch_latency_seconds" in families
    assert "cam_request_latency_seconds" in families

    analyzer = CriticalPathAnalyzer(tracer)
    for key, (trace_id, value) in exemplars.items():
        assert value > 0
        root = analyzer.root(trace_id)  # raises KeyError if dangling
        rows = analyzer.waterfall(trace_id)
        assert rows[0]["name"] == "request"
        assert any(r["links"] for r in rows), (
            f"{key} exemplar {trace_id} has no cross-layer flow link"
        )
        # the batch exemplar's value is the batch span's duration, the
        # request exemplar's the root's; both lie within the window
        assert value <= root.duration + 1e-12


def test_exemplar_keeps_the_worst_observation():
    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    metrics = install_metrics(platform.env)
    hist = metrics.registry.histogram("x_seconds", unit="seconds")
    child = hist.child()
    child.observe(0.5, trace_id=1)
    child.observe(2.0, trace_id=2)
    child.observe(1.0, trace_id=3)
    child.observe(9.9)  # untraced observations never become exemplars
    assert child.exemplar == (2, 2.0)


# -- orphan detection (satellite 1) ------------------------------------

def test_orphan_spans_detected_after_parent_eviction():
    clock = _Clock()
    tracer = Tracer(clock, capacity=4)
    parent = tracer.begin("batch")
    clock.now = 1.0
    tracer.end(parent)
    # four children commit after it: the ring (capacity 4) evicts the
    # parent, leaving dangling parent_ids behind
    for index in range(4):
        child = tracer.begin("submit", parent=parent, index=index)
        clock.now += 1.0
        tracer.end(child)
    analyzer = TraceAnalyzer(tracer)
    orphans = analyzer.orphan_spans()
    assert len(orphans) == 4
    assert all(s.parent_id == parent.span_id for s in orphans)
    summary = analyzer.summary()
    assert summary["orphan_spans"] == 4


def test_no_orphans_in_an_unevicted_trace():
    tracer = _cam_run(requests=4)
    assert tracer.dropped == 0
    analyzer = TraceAnalyzer(tracer)
    assert analyzer.orphan_spans() == []
    assert analyzer.summary()["orphan_spans"] == 0


# -- CSV round trip (satellite 2) --------------------------------------

_tag_values = st.one_of(
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),  # includes commas, quotes, newlines
    st.booleans(),
    st.none(),
    st.lists(st.integers(min_value=0, max_value=99), max_size=4),
)

_tags = st.dictionaries(
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"),
            whitelist_characters="_",
        ),
        min_size=1,
        max_size=12,
    ),
    _tag_values,
    max_size=5,
)


@given(tags=_tags, name=st.text(min_size=1, max_size=20))
@settings(max_examples=80, deadline=None)
def test_csv_round_trip_preserves_arbitrary_tags(tmp_path_factory,
                                                 tags, name):
    path = tmp_path_factory.mktemp("trace") / "roundtrip.csv"
    span = Span(1, name, 0.25, tags=dict(tags))
    span.end = 1.75
    export_trace_csv([span], path)
    (restored,) = load_trace_csv(path)
    assert restored.name == name
    assert restored.begin == span.begin
    assert restored.end == span.end
    assert restored.tags == tags


def test_csv_round_trip_handles_hostile_and_numpy_tags(tmp_path):
    hostile = {
        "note": 'line1\nline2,"quoted", done',
        "lba": np.int64(123456789),
        "ratio": np.float64(0.125),
        "links": [np.int64(3), np.int64(4)],
        "flags": (1, 2),
    }
    span = Span(7, "nvme_io", 1.0, parent_id=3, tags=hostile)
    span.end = 2.0
    path = tmp_path / "hostile.csv"
    export_trace_csv([span], path)
    (restored,) = load_trace_csv(path)
    assert restored.tags["note"] == hostile["note"]
    assert restored.tags["lba"] == 123456789
    assert restored.tags["ratio"] == 0.125
    assert restored.tags["links"] == [3, 4]
    assert restored.tags["flags"] == [1, 2]  # tuples flatten to lists
    assert restored.parent_id == 3


def test_csv_round_trip_preserves_causal_analysis(tmp_path):
    """The critical-path verdict must survive export/import."""
    _, tracer, _ = run_demo("base", num_sessions=10)
    path = tmp_path / "serving.csv"
    export_trace_csv(tracer, path)
    original = CriticalPathAnalyzer(tracer)
    reloaded = CriticalPathAnalyzer(load_trace_csv(path))
    assert reloaded.request_ids() == original.request_ids()
    for tid in original.request_ids():
        assert reloaded.attribute(tid) == pytest.approx(
            original.attribute(tid)
        )
