"""Tiered flash: local NVMe as a write-back cache over remote capacity.

:class:`TieredBackend` is the partition-tolerance capstone: the local
array (any :class:`~repro.backends.base.StorageBackend`) caches a
disaggregated :class:`~repro.net.remote.RemoteFlashBackend` that holds
the full dataset.  In steady state reads hit the local tier and misses
are fetched from remote and admitted; writes land locally first
(write-back) and a **dirty log** records which pages still owe a flush
to the remote tier.

When the fabric fails (any :class:`~repro.errors.NetworkError` out of
the remote backend) the tier downgrades to **local-only degraded mode**:

* resident reads keep being served from the local array;
* non-resident reads fail fast with a typed
  :class:`~repro.errors.RemoteUnavailableError` (never a hang);
* writes are accepted locally and queued in the dirty log;
* dirty pages are pinned — the LRU never evicts a page the remote tier
  has not acked, preferring cache overflow to data loss.

Heal detection is lazy and rate-limited: at most once per
``probe_interval`` a degraded operation pings the fabric
(:meth:`RemoteFlashBackend.probe`); on answer the tier **resyncs** —
drains the dirty log by reading each page from the local array and
replicating it out — and only leaves degraded mode once the log is
empty.  A partition that re-opens mid-resync simply drops the tier back
to degraded with the remaining pages still queued.

No background processes: every state transition happens inside a
caller's operation, so an idle tier costs zero events and replays
deterministically.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional

from repro.backends.base import StorageBackend
from repro.errors import (
    ConfigurationError,
    NetworkError,
    RemoteUnavailableError,
)
from repro.net.remote import RemoteFlashBackend
from repro.sim.stats import Counter


class TieredBackend(StorageBackend):
    """Local write-back cache tier over a remote flash backend."""

    accepts_trace_ctx = True

    def __init__(
        self,
        local: StorageBackend,
        remote: RemoteFlashBackend,
        capacity_bytes: int,
        page_blocks: int = 8,
        flush_watermark: int = 64,
        flush_burst: int = 8,
        probe_interval: float = 200e-6,
    ):
        if page_blocks < 1:
            raise ConfigurationError("page_blocks must be >= 1")
        super().__init__(local.platform, reliability=local.reliability)
        self.local = local
        self.remote = remote
        self.model_name = local.model_name
        block = self.platform.config.ssd.block_size
        self.page_bytes = page_blocks * block
        self.page_blocks = page_blocks
        if capacity_bytes < self.page_bytes:
            raise ConfigurationError("tier must hold at least one page")
        self.capacity_pages = capacity_bytes // self.page_bytes
        if flush_watermark < 1:
            raise ConfigurationError("flush_watermark must be >= 1")
        self.flush_watermark = flush_watermark
        if flush_burst < 1:
            raise ConfigurationError("flush_burst must be >= 1")
        #: pages written back per watermark trigger.  A full drain
        #: inside one write op would stall that caller for the whole
        #: backlog; a small burst amortises the write-back across the
        #: writes that keep the log above the watermark.
        self.flush_burst = flush_burst
        if probe_interval <= 0:
            raise ConfigurationError("probe_interval must be positive")
        self.probe_interval = probe_interval
        #: page id -> None (OrderedDict as LRU: end = most recent)
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        #: page -> write generation for pages the remote tier has not
        #: acked yet (insertion = age order, which is the resync drain
        #: order); pinned in the LRU.  The generation lets a flush
        #: detect a write that re-dirtied the page while the flush's
        #: remote ack was in flight — popping the flag then would lose
        #: the newer write.
        self._dirty: "OrderedDict[int, int]" = OrderedDict()
        self._write_gen = 0
        self.degraded = False
        self._last_probe = -float("inf")
        #: per-page operation locks (the range-lock a real tiering
        #: engine keeps), in two modes.  *Exclusive* (fetches, flushes)
        #: so a slow remote fetch can never admit stale bytes over a
        #: write that landed while it was in flight.  *Shared* (writes
        #: to fully-covered pages): overlapping writes may interleave —
        #: block-device semantics, and the dirty-log generation guard
        #: keeps flushes correct — but they exclude fetches, which is
        #: the pairing the stale-admission race needs.  Hot-page write
        #: traffic therefore never convoys.  Uncontended
        #: acquire/release never yields, so a workload without page
        #: conflicts runs event-for-event identically.
        self._locked: set = set()
        self._writers: dict = {}
        self._waiters: dict = {}
        self.hits = Counter(self.env)
        self.misses = Counter(self.env)
        self.evictions = Counter(self.env)
        self.degraded_misses = Counter(self.env)
        self.queued_writes = Counter(self.env)
        self.flushed_pages = Counter(self.env)
        self.partitions_detected = Counter(self.env)
        self.resyncs = Counter(self.env)
        self._instruments = None

    @property
    def name(self) -> str:
        return f"{self.local.name}+remote-tier"

    # -- page bookkeeping ------------------------------------------------
    def _pages_of(self, lba: int, nbytes: int):
        block = self.platform.config.ssd.block_size
        start = lba * block
        first = start // self.page_bytes
        last = (start + max(1, nbytes) - 1) // self.page_bytes
        return range(first, last + 1)

    def _page_lba(self, page: int) -> int:
        return page * self.page_blocks

    def _touch(self, page: int) -> None:
        self._resident[page] = None
        self._resident.move_to_end(page)
        while len(self._resident) > self.capacity_pages:
            victim = next(
                (p for p in self._resident if p not in self._dirty), None
            )
            if victim is None:
                # every resident page is dirty: overflow the capacity
                # rather than dropping unflushed data
                break
            del self._resident[victim]
            self.evictions.add()

    def dirty_pages(self) -> int:
        return len(self._dirty)

    # -- per-page op locks ------------------------------------------------
    def _acquire(self, pages, shared=()) -> Generator:
        """Process: lock ``pages`` in ascending order (wait-for edges
        only ever point to higher pages, so no cycles).  Pages listed
        in ``shared`` take the writer-shared mode; the rest are
        exclusive.  Free pages are taken without yielding."""
        shared = set(shared)
        for page in sorted(set(pages)):
            if page in shared:
                while page in self._locked:
                    event = self.env.event()
                    self._waiters.setdefault(page, []).append(event)
                    yield event
                self._writers[page] = self._writers.get(page, 0) + 1
            else:
                while page in self._locked or self._writers.get(page):
                    event = self.env.event()
                    self._waiters.setdefault(page, []).append(event)
                    yield event
                self._locked.add(page)
        return None

    def _release(self, pages, shared=()) -> None:
        shared = set(shared)
        for page in set(pages):
            if page in shared:
                count = self._writers.get(page, 0) - 1
                if count > 0:
                    self._writers[page] = count
                else:
                    self._writers.pop(page, None)
            else:
                self._locked.discard(page)
            for event in self._waiters.pop(page, ()):
                event.succeed()

    def _lock_missing(self, pages) -> Generator:
        """Process: exclusively lock the non-resident pages of a read,
        stable against pages being fetched — or evicted — while we
        waited.  Returns the held page list (empty when everything is
        resident, in which case nothing is held)."""
        while True:
            missing = [p for p in pages if p not in self._resident]
            if not missing:
                return []
            yield from self._acquire(missing)
            still = [p for p in pages if p not in self._resident]
            if set(still) <= set(missing):
                return missing
            self._release(missing)  # a page was evicted under us: retry

    def resident_pages(self) -> int:
        return len(self._resident)

    # -- degraded-mode transitions ---------------------------------------
    def _enter_degraded(self, error: NetworkError) -> None:
        if self.degraded:
            return
        self.degraded = True
        self.partitions_detected.add()
        self._last_probe = self.env.now
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant(
                "net_degraded_enter",
                reason=type(error).__name__,
                dirty=len(self._dirty),
            )
        self._publish()

    def _exit_degraded(self) -> None:
        self.degraded = False
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant("net_degraded_exit", dirty=len(self._dirty))
        self._publish()

    def _maybe_heal(self) -> Generator:
        """Process: rate-limited heal probe + resync while degraded.

        Returns ``True`` when the tier is back in normal mode."""
        if not self.degraded:
            return True
        now = self.env.now
        if now - self._last_probe < self.probe_interval:
            return False
        self._last_probe = now
        if not self.remote.reachable():
            return False
        try:
            yield from self.remote.probe()
        except NetworkError:
            return False
        # the fabric answered: drain the dirty log, then leave degraded
        self.resyncs.add()
        yield from self.flush()
        if self._dirty:
            return False  # partition re-opened mid-resync
        self._exit_degraded()
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant("net_resync_done", resyncs=self.resyncs.total)
        return True

    # -- the dirty log ----------------------------------------------------
    def flush(self, max_pages: Optional[int] = None,
              trace_ctx=None) -> Generator:
        """Process: write dirty pages out to the remote tier (oldest
        first).  Never raises: a fabric failure flips the tier to
        degraded mode and leaves the remaining pages queued.  Returns
        the number of pages flushed.

        ``trace_ctx`` attributes the remote write legs to the request
        whose write tripped the watermark (it pays the flush latency).
        """
        flushed = 0
        for page in list(self._dirty):
            if max_pages is not None and flushed >= max_pages:
                break
            if page in self._locked:
                continue  # an op owns the page right now; next pass
            self._locked.add(page)
            try:
                generation = self._dirty.get(page)
                if generation is None:
                    continue  # a concurrent flush already drained it
                lba = self._page_lba(page)
                cqe = yield from self.local.io(lba, self.page_bytes)
                payload = getattr(cqe, "value", None)
                try:
                    yield from self.remote.io(
                        lba, self.page_bytes, is_write=True,
                        payload=payload, trace_ctx=trace_ctx,
                    )
                except NetworkError as error:
                    self._enter_degraded(error)
                    break
                if self._dirty.get(page) == generation:
                    # only clear if no write re-dirtied the page while
                    # the remote ack was in flight
                    del self._dirty[page]
                flushed += 1
                self.flushed_pages.add()
            finally:
                self._release((page,))
        self._publish()
        return flushed

    def sync(self) -> Generator:
        """Process: explicit full drain (plus a heal attempt when
        degraded).  Returns the number of pages still dirty."""
        if self.degraded:
            self._last_probe = -float("inf")  # sync may always probe
            yield from self._maybe_heal()
        else:
            yield from self.flush()
        return len(self._dirty)

    # -- remote span fetch (read miss / write allocate) -------------------
    def _fetch_span(
        self, missing, span_lba: int, span_nbytes: int, target,
        target_offset: int, trace_ctx=None,
    ) -> Generator:
        """Process: fetch a span from remote, admit the missing runs.

        Only the *missing* pages are written into the local array:
        pages sitting between two missing runs are already resident —
        possibly dirty with newer data — and must not be overwritten.
        The caller holds the op locks for ``missing``, so no write can
        land on those pages while the remote read is in flight."""
        fill_span = (
            trace_ctx.begin("cache_fill", pages=len(missing),
                            bytes=span_nbytes)
            if trace_ctx is not None else None
        )
        try:
            cqe = yield from self._fetch_span_inner(
                missing, span_lba, span_nbytes, target, target_offset,
                trace_ctx,
            )
            return cqe
        finally:
            if fill_span is not None:
                trace_ctx.end(fill_span)

    def _fetch_span_inner(
        self, missing, span_lba: int, span_nbytes: int, target,
        target_offset: int, trace_ctx=None,
    ) -> Generator:
        cqe = yield from self.remote.io(
            span_lba, span_nbytes, target=target,
            target_offset=target_offset, trace_ctx=trace_ctx,
        )
        block = self.platform.config.ssd.block_size
        span_start = span_lba * block
        span_end = span_start + span_nbytes
        value = getattr(cqe, "value", None)
        runs: list = []
        for page in missing:
            if runs and page == runs[-1][-1] + 1:
                runs[-1].append(page)
            else:
                runs.append([page])
        for run in runs:
            run_start = max(span_start, run[0] * self.page_bytes)
            run_end = min(span_end, (run[-1] + 1) * self.page_bytes)
            payload = None
            if value is not None:
                payload = value[run_start - span_start:
                                run_end - span_start]
            yield from self.local.io(
                run_start // block, run_end - run_start,
                is_write=True, payload=payload,
            )
        return cqe

    # -- the backend interface --------------------------------------------
    def io(
        self,
        lba: int,
        nbytes: int,
        is_write: bool = False,
        payload=None,
        target=None,
        target_offset: int = 0,
        ssd_index: Optional[int] = None,
        trace_ctx=None,
    ) -> Generator:
        if is_write:
            cqe = yield from self._write(
                lba, nbytes, payload, target, target_offset,
                trace_ctx=trace_ctx,
            )
        else:
            cqe = yield from self._read(lba, nbytes, target,
                                        target_offset,
                                        trace_ctx=trace_ctx)
        return cqe

    def _read(self, lba, nbytes, target, target_offset,
              trace_ctx=None) -> Generator:
        pages = list(self._pages_of(lba, nbytes))
        missing = [page for page in pages if page not in self._resident]
        if not missing:
            self.hits.add(len(pages))
            cqe = yield from self.local.io(
                lba, nbytes, target=target, target_offset=target_offset
            )
            for page in pages:
                self._touch(page)
            self._publish()
            return cqe

        if self.degraded:
            healed = yield from self._maybe_heal()
            if not healed:
                self.degraded_misses.add()
                self._publish()
                raise RemoteUnavailableError(
                    f"degraded tier: {len(missing)} of {len(pages)} pages "
                    f"not resident locally (lba {lba})"
                )
            missing = [p for p in pages if p not in self._resident]
            if not missing:
                cqe = yield from self._read(lba, nbytes, target,
                                            target_offset,
                                            trace_ctx=trace_ctx)
                return cqe

        held = yield from self._lock_missing(pages)
        try:
            # a concurrent op may have fetched pages while we waited
            # for the locks: recompute under the lock
            missing = [p for p in pages if p not in self._resident]
            if not missing:
                self.hits.add(len(pages))
                cqe = yield from self.local.io(
                    lba, nbytes, target=target,
                    target_offset=target_offset,
                )
                for page in pages:
                    self._touch(page)
                self._publish()
                return cqe
            self.hits.add(len(pages) - len(missing))
            self.misses.add(len(missing))
            # fetch the contiguous window covering the missing pages,
            # clipped to the request (CachedBackend's span rule)
            block = self.platform.config.ssd.block_size
            start_byte = lba * block
            end_byte = start_byte + nbytes
            span_start = max(start_byte, missing[0] * self.page_bytes)
            span_lba = span_start // block
            span_start = span_lba * block
            span_end = min(end_byte, (missing[-1] + 1) * self.page_bytes)
            try:
                cqe = yield from self._fetch_span(
                    missing, span_lba, span_end - span_start, target,
                    target_offset + (span_start - start_byte),
                    trace_ctx=trace_ctx,
                )
            except NetworkError as error:
                self._enter_degraded(error)
                raise
            # resident pages — the edges outside the span, plus any
            # runs *inside* it between missing pages — come off the
            # local array, which may hold newer bytes than remote
            if span_start > start_byte:
                yield from self.local.io(
                    lba, span_start - start_byte,
                    target=target, target_offset=target_offset,
                )
            if span_end < end_byte:
                yield from self.local.io(
                    span_end // block, end_byte - span_end,
                    target=target,
                    target_offset=target_offset + (span_end - start_byte),
                )
            if target is not None:
                for page in pages:
                    if page in missing:
                        continue
                    page_start = max(span_start, page * self.page_bytes)
                    page_end = min(span_end,
                                   (page + 1) * self.page_bytes)
                    if page_start >= page_end:
                        continue  # outside the span: already served
                    yield from self.local.io(
                        page_start // block, page_end - page_start,
                        target=target,
                        target_offset=(target_offset
                                       + (page_start - start_byte)),
                    )
            for page in pages:
                self._touch(page)
        finally:
            self._release(held)
        self._publish()
        return cqe

    def _write(self, lba, nbytes, payload, target, target_offset,
               trace_ctx=None) -> Generator:
        pages = list(self._pages_of(lba, nbytes))
        block = self.platform.config.ssd.block_size
        start_byte = lba * block
        end_byte = start_byte + nbytes
        # partially-covered edge pages may need a write-allocate fetch,
        # so they take the exclusive mode; fully-covered pages only
        # need to fence off concurrent fetches (shared mode)
        covered = [
            page for page in pages
            if start_byte <= page * self.page_bytes
            and end_byte >= (page + 1) * self.page_bytes
        ]
        yield from self._acquire(pages, shared=covered)
        try:
            if not self.degraded:
                # write-allocate: a partially-covered non-resident edge
                # page must be fetched first, or its untouched bytes
                # would later be flushed from a local array that never
                # held them
                for page in (pages[0], pages[-1]):
                    if page in covered or page in self._resident:
                        continue
                    try:
                        yield from self._fetch_span(
                            [page], self._page_lba(page),
                            self.page_bytes, None, 0,
                            trace_ctx=trace_ctx,
                        )
                    except NetworkError as error:
                        self._enter_degraded(error)
                        break
                    self._touch(page)

            cqe = yield from self.local.io(
                lba, nbytes, is_write=True, payload=payload,
                target=target, target_offset=target_offset,
            )
            self._write_gen += 1
            for page in pages:
                self._dirty[page] = self._write_gen
                self._touch(page)
        finally:
            self._release(pages, shared=covered)
        if self.degraded:
            self.queued_writes.add()
            yield from self._maybe_heal()
        elif len(self._dirty) >= self.flush_watermark:
            yield from self.flush(max_pages=self.flush_burst,
                                  trace_ctx=trace_ctx)
        self._publish()
        return cqe

    def bulk_time(self, total_bytes, granularity=4096, is_write=False,
                  **kwargs):
        """Steady state assumes the cache-friendly case: local-tier
        service (misses/flushes are modelled per-request only)."""
        return self.local.bulk_time(
            total_bytes, granularity, is_write, **kwargs
        )

    # -- stats / live metrics ---------------------------------------------
    def hit_rate(self) -> float:
        total = self.hits.total + self.misses.total
        return self.hits.total / total if total else 0.0

    def stats(self) -> dict:
        return {
            "hits": self.hits.total,
            "misses": self.misses.total,
            "hit_rate": self.hit_rate(),
            "evictions": self.evictions.total,
            "degraded": self.degraded,
            "degraded_misses": self.degraded_misses.total,
            "queued_writes": self.queued_writes.total,
            "dirty_pages": len(self._dirty),
            "resident_pages": len(self._resident),
            "flushed_pages": self.flushed_pages.total,
            "partitions_detected": self.partitions_detected.total,
            "resyncs": self.resyncs.total,
        }

    def _publish(self) -> None:
        metrics = self.env.metrics
        if not metrics.enabled:
            return
        registry = metrics.registry
        if self._instruments is None or self._instruments[0] is not registry:
            specs = (
                ("cam_net_tier_hits_total", "counter",
                 "tier pages served from the local array"),
                ("cam_net_tier_misses_total", "counter",
                 "tier pages fetched from the remote backend"),
                ("cam_net_tier_degraded", "gauge",
                 "1 while the tier is in local-only degraded mode"),
                ("cam_net_tier_dirty_pages", "gauge",
                 "pages in the write-back dirty log"),
                ("cam_net_tier_degraded_misses_total", "counter",
                 "reads refused because degraded + not resident"),
                ("cam_net_tier_queued_writes_total", "counter",
                 "writes accepted locally while degraded"),
                ("cam_net_tier_flushed_pages_total", "counter",
                 "dirty pages acked by the remote tier"),
                ("cam_net_tier_resyncs_total", "counter",
                 "post-heal dirty-log drains started"),
            )
            children = []
            for name, kind, help_text in specs:
                family = registry.get(name)
                if family is None:
                    family = registry.register(name, kind, help=help_text)
                children.append(family.child())
            self._instruments = (registry, *children)
        (_, hits, misses, degraded, dirty, dmisses, queued, flushed,
         resyncs) = self._instruments
        hits.set_total(self.hits.total)
        misses.set_total(self.misses.total)
        degraded.set(1.0 if self.degraded else 0.0)
        dirty.set(float(len(self._dirty)))
        dmisses.set_total(self.degraded_misses.total)
        queued.set_total(self.queued_writes.total)
        flushed.set_total(self.flushed_pages.total)
        resyncs.set_total(self.resyncs.total)

    def publish(self) -> None:
        """Pull-refresh for the sampler; cascades into the remote tier."""
        self._publish()
        self.remote.publish()
