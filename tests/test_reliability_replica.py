"""ReplicatedBackend: mirror semantics, degraded paths, fail-over and
hot-spare rebuild, and the reliability span vocabulary in exports."""

import json

import numpy as np
import pytest

from repro.backends import ReplicatedBackend, make_backend
from repro.config import PlatformConfig
from repro.errors import ConfigurationError, InvalidLBAError
from repro.hw.faults import FaultInjector
from repro.hw.platform import Platform
from repro.obs import install_tracer
from repro.reliability import Reliability
from repro.tools.export import export_perfetto_json


def _platform(num_ssds=2, injector=None, functional=False):
    return Platform(
        PlatformConfig(num_ssds=num_ssds),
        functional=functional,
        fault_injector=injector,
    )


def _run(platform, gen):
    return platform.env.run(platform.env.process(gen))


def test_mirror_functional_roundtrip():
    platform = _platform(functional=True)
    mirror = ReplicatedBackend(make_backend("posix", platform))
    data = (np.arange(4096) % 251).astype(np.uint8)

    def proc():
        yield from mirror.io(0, 4096, is_write=True, payload=data)
        cqe = yield from mirror.io(0, 4096)
        return cqe

    cqe = _run(platform, proc())
    assert cqe.ok
    assert np.array_equal(np.frombuffer(cqe.value, np.uint8), data)
    assert mirror.degraded_reads.total == 0


def test_degraded_read_serves_from_replica():
    injector = FaultInjector()
    platform = _platform(injector=injector, functional=True)
    mirror = ReplicatedBackend(make_backend("posix", platform))
    data = np.full(4096, 7, dtype=np.uint8)

    def write():
        yield from mirror.io(0, 4096, is_write=True, payload=data)

    _run(platform, write())
    # primary copy of lba 0 lives on SSD 0; break it persistently
    injector.inject_lba(0, 0, persistent=True)

    def read():
        cqe = yield from mirror.io(0, 4096)
        return cqe

    cqe = _run(platform, read())
    assert cqe.ok
    assert np.array_equal(np.frombuffer(cqe.value, np.uint8), data)
    assert mirror.degraded_reads.total == 1


def test_degraded_write_succeeds_on_one_leg():
    injector = FaultInjector()
    platform = _platform(injector=injector, functional=True)
    mirror = ReplicatedBackend(make_backend("posix", platform))
    injector.inject_lba(0, 0, persistent=True)
    data = np.zeros(4096, dtype=np.uint8)

    def write():
        cqe = yield from mirror.io(0, 4096, is_write=True, payload=data)
        return cqe

    _run(platform, write())
    assert mirror.degraded_writes.total == 1
    # the surviving replica still serves reads
    injector.repair_lba(0, 0)

    def read():
        cqe = yield from mirror.io(0, 4096)
        return cqe

    assert _run(platform, read()).ok


def test_offline_primary_triggers_failover_and_rebuild():
    injector = FaultInjector()
    platform = _platform(num_ssds=3, injector=injector, functional=True)
    reliability = Reliability(platform, watchdog_timeout=1e-3)
    inner = make_backend("posix", platform, reliability=reliability)
    mirror = ReplicatedBackend(inner, spares=1)
    data = (np.arange(4096) % 199).astype(np.uint8)

    def write():
        yield from mirror.io(0, 4096, is_write=True, payload=data)

    _run(platform, write())
    injector.set_offline(0)

    def read():
        cqe = yield from mirror.io(0, 4096)
        return cqe

    cqe = _run(platform, read())
    assert cqe.ok
    assert np.array_equal(np.frombuffer(cqe.value, np.uint8), data)
    assert mirror.degraded_reads.total == 1
    assert mirror.failovers.total == 1
    # drain the background rebuild onto the hot spare
    platform.env.run()
    assert mirror.rebuilds.total == 1
    assert mirror.rebuild_progress == 1.0
    # traffic now goes to the spare: reads succeed without degradation
    cqe = _run(platform, read())
    assert cqe.ok
    assert np.array_equal(np.frombuffer(cqe.value, np.uint8), data)
    assert mirror.degraded_reads.total == 1


def test_failover_without_spare_keeps_degraded_serving():
    injector = FaultInjector()
    platform = _platform(num_ssds=2, injector=injector, functional=True)
    reliability = Reliability(platform, watchdog_timeout=1e-3)
    mirror = ReplicatedBackend(
        make_backend("posix", platform, reliability=reliability)
    )
    data = np.ones(4096, dtype=np.uint8)

    def write():
        yield from mirror.io(0, 4096, is_write=True, payload=data)

    _run(platform, write())
    injector.set_offline(0)

    def read():
        cqe = yield from mirror.io(0, 4096)
        return cqe

    assert _run(platform, read()).ok
    assert mirror.failovers.total == 0  # no spare to fail over to
    assert mirror.degraded_reads.total == 1


def test_reliability_spans_reach_perfetto_export(tmp_path):
    injector = FaultInjector()
    platform = _platform(num_ssds=3, injector=injector, functional=True)
    tracer = install_tracer(platform.env)
    reliability = Reliability(platform, watchdog_timeout=1e-3)
    inner = make_backend("posix", platform, reliability=reliability)
    mirror = ReplicatedBackend(inner, spares=1)
    data = np.zeros(4096, dtype=np.uint8)

    def write():
        yield from mirror.io(0, 4096, is_write=True, payload=data)

    _run(platform, write())
    injector.set_offline(0)
    # the fallback read hits a transient fault first -> a retry span
    injector.inject_lba(1, mirror.replica_base)

    def read():
        cqe = yield from mirror.io(0, 4096)
        return cqe

    assert _run(platform, read()).ok
    platform.env.run()  # finish the rebuild
    path = tmp_path / "trace.json"
    export_perfetto_json(tracer, path)
    names = {
        event["name"]
        for event in json.loads(path.read_text())["traceEvents"]
        if "name" in event
    }
    assert {
        "retry",
        "watchdog_timeout",
        "breaker_trip",
        "degraded_read",
        "rebuild",
        "rebuild_done",
    } <= names


def test_replication_needs_even_data_devices():
    platform = _platform(num_ssds=3)
    with pytest.raises(ConfigurationError, match="even number"):
        ReplicatedBackend(make_backend("posix", platform))
    with pytest.raises(ConfigurationError, match="even number"):
        ReplicatedBackend(make_backend("posix", _platform(num_ssds=1)))


def test_mirror_halves_usable_capacity():
    platform = _platform(functional=False)
    mirror = ReplicatedBackend(make_backend("posix", platform))
    beyond = mirror.replica_base * mirror.num_data

    def proc():
        yield from mirror.io(beyond, 4096)

    with pytest.raises(InvalidLBAError):
        platform.env.run(platform.env.process(proc()))


def test_explicit_ssd_index_bypasses_replication():
    platform = _platform(functional=False)
    mirror = ReplicatedBackend(make_backend("posix", platform))

    def proc():
        cqe = yield from mirror.io(0, 4096, ssd_index=1)
        return cqe

    assert _run(platform, proc()).ok
    assert mirror.degraded_reads.total == 0
