"""I/O mapping layer: kernel page pin/unpin accounting.

The kernel stacks pin destination pages before DMA and unpin after — per
request, because "they don't know the total request size ahead of time, so
they can't map once in a single batching access" (paper Section II-A).
CAM's opportunity-for-improvement is precisely mapping once per *batch*;
:meth:`IOMapper.pin_batch` models that cheaper path for comparison.
"""

from __future__ import annotations

from repro.config import KernelIOConfig
from repro.sim.core import Environment
from repro.sim.stats import Counter

_PAGE = 4096


class IOMapper:
    """Charges pin/unpin CPU time and counts mapped pages."""

    def __init__(self, env: Environment, config: KernelIOConfig):
        self.env = env
        self.config = config
        self.pages_pinned = Counter(env)
        self.pin_operations = Counter(env)

    def pages_for(self, nbytes: int) -> int:
        return max(1, -(-nbytes // _PAGE))

    def pin_time(self, nbytes: int) -> float:
        """Per-request pin + unpin CPU time.

        The configured ``iomap_time`` covers a single-page (<= 4 KiB)
        request — the dominant case in the paper's workloads; additional
        pages add 15% each (get_user_pages walks per page but amortizes
        locking).
        """
        pages = self.pages_for(nbytes)
        return self.config.iomap_time * (1.0 + 0.15 * (pages - 1))

    def pin(self, nbytes: int):
        """Process: pin the pages backing one request."""
        self.pages_pinned.add(self.pages_for(nbytes))
        self.pin_operations.add()
        return self.env.timeout(self.pin_time(nbytes))

    def pin_batch(self, nbytes: int, requests: int):
        """Process: map a whole batch once (the CAM-style amortized path).

        One pin covers every request in the batch, so per-request cost
        collapses by ``1/requests``.
        """
        if requests < 1:
            requests = 1
        self.pages_pinned.add(self.pages_for(nbytes))
        self.pin_operations.add()
        return self.env.timeout(self.pin_time(nbytes) / requests * 1.0)
