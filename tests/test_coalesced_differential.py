"""Differential tests: coalesced submission vs per-request fan-out.

The coalesced path (:meth:`~repro.spdk.driver.SpdkDriver.io_batch`) must
be a pure wall-clock optimization: every simulated quantity — batch I/O
times, per-request device latencies (values *and* completion order),
completion counts, fault outcomes, and the final simulated clock — has to
match the fan-out path bit for bit.  These tests run the same workloads
through both paths and compare.
"""

import numpy as np
import pytest

from repro.config import PlatformConfig
from repro.core.control import BatchRequest, CamManager
from repro.errors import ConfigurationError, DeviceError, SimulationError
from repro.hw.faults import FaultInjector
from repro.hw.platform import Platform
from repro.oskernel.blockio import CompletionDispatcher
from repro.sim.core import Environment
from repro.sim.resources import Store


def _run_batches(
    coalesce,
    num_ssds=4,
    num_cores=2,
    requests=256,
    is_write=False,
    batches=2,
    error_rate=0.0,
):
    """Run ``batches`` deterministic batches; return everything observable."""
    platform = Platform(PlatformConfig(num_ssds=num_ssds), functional=False)
    if error_rate:
        injector = FaultInjector(seed=7, error_rate=error_rate)
        platform.fault_injector = injector
        for ssd in platform.ssds:
            ssd.fault_injector = injector
    manager = CamManager(platform, num_cores=num_cores, coalesce=coalesce)
    env = platform.env
    outcomes = []
    for index in range(batches):
        lbas = (np.arange(requests, dtype=np.int64) * 7 + index * 13) % (
            1 << 18
        )
        done = manager.ring(
            BatchRequest(lbas=lbas, granularity=4096, is_write=is_write)
        )
        try:
            outcomes.append(("ok", env.run(done)))
        except DeviceError as error:
            outcomes.append(("err", type(error).__name__, str(error)))
    stat = "write_latency" if is_write else "read_latency"
    latencies = [tuple(getattr(s, stat)._samples) for s in platform.ssds]
    counts = [
        (s.reads_completed.total, s.writes_completed.total, s.faults_reported)
        for s in platform.ssds
    ]
    return {
        "outcomes": outcomes,
        "latencies": latencies,
        "counts": counts,
        "sim_end": env.now,
        "events": env.events_processed,
        "requests_done": manager.requests_done.total,
    }


def _assert_identical(fanout, coalesced):
    assert coalesced["outcomes"] == fanout["outcomes"]
    # per-SSD latency sample lists pin both the values and the completion
    # order of every individual request
    assert coalesced["latencies"] == fanout["latencies"]
    assert coalesced["counts"] == fanout["counts"]
    assert coalesced["sim_end"] == fanout["sim_end"]
    assert coalesced["requests_done"] == fanout["requests_done"]


def test_read_batches_identical():
    fanout = _run_batches(False)
    coalesced = _run_batches(True)
    _assert_identical(fanout, coalesced)


def test_write_batches_identical():
    fanout = _run_batches(False, is_write=True)
    coalesced = _run_batches(True, is_write=True)
    _assert_identical(fanout, coalesced)


def test_shared_reactor_batches_identical():
    # more SSDs than reactors: groups span SSDs on the same reactor
    fanout = _run_batches(False, num_ssds=8, num_cores=3, requests=512)
    coalesced = _run_batches(True, num_ssds=8, num_cores=3, requests=512)
    _assert_identical(fanout, coalesced)


def test_single_ssd_batches_identical():
    fanout = _run_batches(False, num_ssds=1, num_cores=1, requests=64)
    coalesced = _run_batches(True, num_ssds=1, num_cores=1, requests=64)
    _assert_identical(fanout, coalesced)


def test_fault_injected_read_batches_identical():
    fanout = _run_batches(False, error_rate=0.02)
    coalesced = _run_batches(True, error_rate=0.02)
    assert any(o[0] == "err" for o in fanout["outcomes"]), (
        "fault config produced no failures; raise error_rate"
    )
    _assert_identical(fanout, coalesced)


def test_fault_injected_write_batches_identical():
    fanout = _run_batches(False, is_write=True, error_rate=0.02)
    coalesced = _run_batches(True, is_write=True, error_rate=0.02)
    _assert_identical(fanout, coalesced)


def test_coalesced_processes_fewer_events():
    fanout = _run_batches(False, num_ssds=8, num_cores=3, requests=512)
    coalesced = _run_batches(True, num_ssds=8, num_cores=3, requests=512)
    # the point of the exercise: same simulation, fewer heap events
    assert coalesced["events"] < 0.7 * fanout["events"]


# -- io_batch API edges ----------------------------------------------------

def test_io_batch_rejects_reliability():
    platform = Platform(PlatformConfig(num_ssds=2), functional=False)
    from repro.spdk.driver import SpdkDriver

    class _FakeReliability:
        watchdog = None
        health = None

    driver = SpdkDriver(platform, reliability=_FakeReliability())
    with pytest.raises(ConfigurationError):
        # generator raises on first advance
        next(driver.io_batch([(0, 0, 0, None)], 4096))


def test_io_batch_rejects_mixed_reactors():
    platform = Platform(PlatformConfig(num_ssds=4), functional=False)
    from repro.spdk.driver import SpdkDriver

    driver = SpdkDriver(platform, num_reactors=2)
    # SSDs 0 and 1 live on different reactors under round-robin
    items = [(0, 0, 0, None), (1, 1, 0, None)]

    def caller():
        yield from driver.io_batch(items, 4096)

    process = platform.env.process(caller())
    with pytest.raises(ConfigurationError):
        platform.env.run(process)


def test_io_batch_empty_items_is_noop():
    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    from repro.spdk.driver import SpdkDriver

    driver = SpdkDriver(platform)

    def caller():
        result = yield from driver.io_batch([], 4096)
        return result

    assert platform.env.run(platform.env.process(caller())) == []


# -- completion groups -----------------------------------------------------

def _dispatcher():
    env = Environment()
    qp = type("QP", (), {"pop_completion": lambda self: Store(env).get()})()
    return env, CompletionDispatcher(env, qp)


def test_group_expect_after_seal_raises():
    env, dispatcher = _dispatcher()
    group = dispatcher.open_group()
    dispatcher.expect(group, 1)
    dispatcher.seal(group)
    with pytest.raises(SimulationError):
        dispatcher.expect(group, 2)


def test_group_duplicate_command_id_raises():
    env, dispatcher = _dispatcher()
    group = dispatcher.open_group()
    dispatcher.expect(group, 1)
    with pytest.raises(SimulationError):
        dispatcher.expect(group, 1)
    # also clashes with per-command waiters
    dispatcher.register(2)
    with pytest.raises(SimulationError):
        dispatcher.expect(group, 2)
    with pytest.raises(SimulationError):
        dispatcher.register(1)


def test_empty_sealed_group_fires_immediately():
    env, dispatcher = _dispatcher()
    group = dispatcher.open_group()
    dispatcher.seal(group)
    assert group.event.triggered
    assert group.event._value == {}


# -- reactor remapping (Fig. 12 dynamic cores) -----------------------------

def test_reactor_pool_remap_round_robins_over_active():
    from repro.spdk.reactor import ReactorPool
    from repro.config import SPDKConfig

    env = Environment()
    pool = ReactorPool(env, num_ssds=6, num_reactors=3, config=SPDKConfig())
    pool.remap(2)
    assert [pool.reactor_for(i).reactor_id for i in range(6)] == [
        0, 1, 0, 1, 0, 1,
    ]
    pool.remap(3)
    assert [pool.reactor_for(i).reactor_id for i in range(6)] == [
        0, 1, 2, 0, 1, 2,
    ]


def test_reactor_pool_remap_validates_count():
    from repro.spdk.reactor import ReactorPool
    from repro.config import SPDKConfig

    env = Environment()
    pool = ReactorPool(env, num_ssds=4, num_reactors=2, config=SPDKConfig())
    with pytest.raises(ConfigurationError):
        pool.remap(0)
    with pytest.raises(ConfigurationError):
        pool.remap(3)


def test_manager_set_active_reactors_rebinds_handles():
    platform = Platform(PlatformConfig(num_ssds=4), functional=False)
    manager = CamManager(platform, num_cores=2)
    manager.set_active_reactors(1)
    assert manager.active_reactors == 1
    driver = manager.driver
    assert all(
        driver.handle(i).reactor.reactor_id == 0
        for i in range(platform.num_ssds)
    )
    manager.set_active_reactors(2)
    assert {
        driver.handle(i).reactor.reactor_id
        for i in range(platform.num_ssds)
    } == {0, 1}
    with pytest.raises(ConfigurationError):
        manager.set_active_reactors(3)


def test_remapped_manager_still_matches_fanout():
    """Coalescing stays differential-identical after a remap."""

    def run(coalesce):
        platform = Platform(
            PlatformConfig(num_ssds=4), functional=False
        )
        manager = CamManager(platform, num_cores=2, coalesce=coalesce)
        manager.set_active_reactors(1)
        env = platform.env
        lbas = (np.arange(256, dtype=np.int64) * 5 + 3) % (1 << 18)
        io_time = env.run(
            manager.ring(
                BatchRequest(lbas=lbas, granularity=4096, is_write=False)
            )
        )
        return io_time, env.now, [
            tuple(s.read_latency._samples) for s in platform.ssds
        ]

    assert run(False) == run(True)
