"""The kernel I/O stacks themselves: POSIX, libaio, io_uring (int/poll).

Each stack exposes one coroutine, :meth:`KernelStack.io`, that performs a
single I/O through the full kernel path and resumes when the data is in
host memory.  The differences between stacks are:

=================  ========================  ===========================
stack              submission cost           completion cost
=================  ========================  ===========================
POSIX pread        syscall per request       interrupt + context switch
libaio             syscall per batch,        interrupt + io_getevents
                   kernel layers per req
io_uring (int)     ring write, kernel        interrupt
                   layers per req
io_uring (poll)    ring write, kernel        kernel-side completion poll
                   layers per req
=================  ========================  ===========================

All four pay the file-system (LBA retrieval) and io_map (page pin/unpin)
layers per request — the > 34 % overhead of Fig. 3 and the reason none of
them reach the SSD's native throughput in Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.config import KernelIOConfig, LibaioCostConfig
from repro.errors import (
    DeviceTimeoutError,
    MediaError,
    RetryExhaustedError,
    SimulationError,
)
from repro.hw.cpu import CycleAccountant
from repro.hw.nvme import SQE, NVMeOpcode
from repro.hw.platform import Platform
from repro.oskernel.blockio import BlockLayer
from repro.oskernel.iomap import IOMapper
from repro.sim.resources import Resource
from repro.sim.stats import Counter

#: layer names in paper Fig. 3 order
LAYERS = ("user", "filesystem", "iomap", "blockio")


@dataclass
class LayerBreakdown:
    """Accumulated CPU seconds per kernel layer (paper Fig. 3)."""

    seconds: Dict[str, float] = field(
        default_factory=lambda: {layer: 0.0 for layer in LAYERS}
    )

    def charge(self, layer: str, duration: float) -> None:
        if layer not in self.seconds:
            raise SimulationError(f"unknown layer {layer!r}")
        self.seconds[layer] += duration

    def fractions(self) -> Dict[str, float]:
        total = sum(self.seconds.values())
        if not total:
            return {layer: 0.0 for layer in LAYERS}
        return {
            layer: value / total for layer, value in self.seconds.items()
        }

    def kernel_overhead_fraction(self) -> float:
        """Share of CPU time in fs + io_map — the paper's > 34 % claim."""
        fractions = self.fractions()
        return fractions["filesystem"] + fractions["iomap"]


class KernelStack:
    """Shared machinery for the kernel-mediated stacks."""

    #: human-readable name used in reports
    name = "kernel"

    def __init__(
        self,
        platform: Platform,
        completion_cost: float,
        submit_threads: int,
        config: Optional[KernelIOConfig] = None,
        reliability=None,
        admission=None,
    ):
        self.platform = platform
        self.env = platform.env
        self.config = config or platform.config.kernel_io
        #: optional :class:`~repro.reliability.Reliability` bundle; None
        #: keeps the original fail-fast -EIO behaviour
        self.reliability = reliability
        #: optional :class:`~repro.reliability.AdmissionController`
        #: bounding in-flight requests/bytes through :meth:`io`
        self.admission = admission
        self.iomap = IOMapper(self.env, self.config)
        #: serializes submission-side CPU work across the stack's threads
        self._submit_cpu = Resource(self.env, capacity=max(1, submit_threads))
        self.block_layer = BlockLayer(
            self.env,
            platform.ssds,
            completion_cost=completion_cost,
            cpu=self._submit_cpu,
        )
        self.breakdown = LayerBreakdown()
        self.accountant = CycleAccountant()
        self.requests_done = Counter(self.env)
        self.bytes_done = Counter(self.env)

    # -- subclass hooks ------------------------------------------------
    def _submission_layers(self, nbytes: int, is_write: bool):
        """Yield ``(layer_name, seconds)`` of submission-side CPU work."""
        raise NotImplementedError

    def _charge_instructions(self, is_write: bool) -> Optional[dict]:
        """Record Fig. 13-style instruction counts for one request.

        Returns the charged ``instructions``/``cycles`` (or ``None``
        when the stack does not model them) so the request's span can be
        tagged with the cost.
        """
        return None

    def _unpin_cost(self, nbytes: int) -> float:
        """Completion-side io_map work (page unpin) per request."""
        return self.iomap.pin_time(nbytes) * 0.4

    # -- the request path ------------------------------------------------
    def _inflate(self, cost: float, is_write: bool) -> float:
        return cost * (self.config.write_inflation if is_write else 1.0)

    def io(
        self,
        lba: int,
        nbytes: int,
        is_write: bool = False,
        payload=None,
        target=None,
        target_offset: int = 0,
        ssd_index: Optional[int] = None,
    ) -> Generator:
        """Process: one I/O through the kernel path.

        ``lba`` is a *global* (RAID0-striped) LBA unless ``ssd_index``
        pins the request to a specific device.  With an admission
        controller attached, requests beyond the in-flight bounds are
        shed with :class:`~repro.errors.OverloadError` before any kernel
        work is charged.
        """
        admission = self.admission
        if admission is None:
            cqe = yield from self._io(
                lba, nbytes, is_write, payload, target, target_offset,
                ssd_index,
            )
            return cqe
        admission.admit(1, nbytes)
        try:
            cqe = yield from self._io(
                lba, nbytes, is_write, payload, target, target_offset,
                ssd_index,
            )
        finally:
            admission.release(1, nbytes)
        return cqe

    def _io(
        self,
        lba: int,
        nbytes: int,
        is_write: bool = False,
        payload=None,
        target=None,
        target_offset: int = 0,
        ssd_index: Optional[int] = None,
    ) -> Generator:
        start_time = self.env.now
        block_size = self.platform.config.ssd.block_size
        num_blocks = max(1, -(-nbytes // block_size))
        if ssd_index is None:
            ssd, local_lba = self.platform.ssd_for_lba(lba)
            ssd_index = ssd.ssd_id
        else:
            local_lba = lba

        # submission-side CPU, serialized across the stack's threads
        tracer = self.env.tracer
        with self._submit_cpu.request() as cpu:
            yield cpu
            for layer, seconds in self._submission_layers(nbytes, is_write):
                seconds = self._inflate(seconds, is_write)
                self.breakdown.charge(layer, seconds)
                # span covers exactly the charged CPU time, so the
                # trace-derived Fig. 3 breakdown matches LayerBreakdown
                span = (
                    tracer.begin("submit", stack=self.name, layer=layer)
                    if tracer.enabled
                    else None
                )
                yield self.env.timeout(seconds)
                if span is not None:
                    tracer.end(span)

        def attempt():
            return self._device_attempt(
                ssd_index, local_lba, num_blocks,
                is_write, payload, target, target_offset,
            )

        if self.reliability is None:
            cqe = yield from attempt()
        else:
            try:
                cqe = yield from self.reliability.run(
                    attempt,
                    ssd_id=ssd_index,
                    lba=local_lba,
                    is_write=is_write,
                )
            except DeviceTimeoutError:
                # the watchdog expired: the device is not answering
                self.reliability.health.mark_offline(ssd_index)
                raise
        if not cqe.ok:
            # pread/pwrite surface device errors as -EIO to the caller
            cls = MediaError if self.reliability is None else (
                RetryExhaustedError
            )
            raise cls(
                f"{self.name}: device reported status {cqe.status:#x} "
                f"for lba {local_lba} on SSD {ssd_index}",
                ssd_id=ssd_index,
                lba=local_lba,
                status=cqe.status,
                attempts=cqe.attempts,
            )

        # the DMA landed in host memory: account the DRAM crossing
        yield from self.platform.dram.access(nbytes)

        # unpin pages (second half of the io_map cost)
        unpin = self._inflate(self._unpin_cost(nbytes), is_write)
        self.breakdown.charge("iomap", unpin)
        unpin_span = None
        with self._submit_cpu.request() as cpu:
            yield cpu
            if tracer.enabled:
                unpin_span = tracer.begin(
                    "completion_signal", stack=self.name, layer="iomap"
                )
            yield self.env.timeout(unpin)
            if unpin_span is not None:
                tracer.end(unpin_span)

        cost = self._charge_instructions(is_write)
        if unpin_span is not None and cost:
            tracer.annotate(unpin_span, **cost)
        self.accountant.complete_request()
        self.requests_done.add()
        self.bytes_done.add(nbytes)
        metrics = self.env.metrics
        if metrics.enabled:
            metrics.stack_io_done(self.name, self.env.now - start_time)
        return cqe

    def _device_attempt(
        self,
        ssd_index: int,
        local_lba: int,
        num_blocks: int,
        is_write: bool,
        payload,
        target,
        target_offset: int,
    ) -> Generator:
        """One device attempt with a fresh SQE (retries must not reuse
        command ids: a timed-out command's waiter stays registered)."""
        opcode = NVMeOpcode.WRITE if is_write else NVMeOpcode.READ
        sqe = SQE(
            opcode=opcode,
            lba=local_lba,
            num_blocks=num_blocks,
            payload=payload,
            target=target,
            target_offset=target_offset,
        )
        watchdog = (
            self.reliability.watchdog
            if self.reliability is not None
            else None
        )
        cqe = yield from self.block_layer.submit_and_wait(
            ssd_index,
            sqe,
            watchdog=watchdog,
            fault_injector=self.platform.fault_injector,
        )
        return cqe

    @property
    def concurrency(self) -> int:
        """Natural number of in-flight requests for peak throughput."""
        raise NotImplementedError


class PosixStack(KernelStack):
    """POSIX ``pread``/``pwrite`` with ``O_DIRECT``: fully synchronous.

    Each worker thread blocks inside the syscall for the whole device
    round-trip, so peak throughput is ``threads / (cpu + device_latency)``
    — the worst curve in Fig. 2.
    """

    name = "posix"

    def __init__(
        self,
        platform: Platform,
        threads: Optional[int] = None,
        reliability=None,
    ):
        config = platform.config.kernel_io
        threads = threads or config.posix_threads
        super().__init__(
            platform,
            completion_cost=config.interrupt_time,
            submit_threads=threads,
            config=config,
            reliability=reliability,
        )
        self.threads = threads
        #: a pread blocks its calling thread for the whole round trip, so
        #: at most ``threads`` requests are in flight regardless of how
        #: many callers exist (open-loop traces included)
        self._thread_slots = Resource(self.env, capacity=threads)

    def io(self, *args, **kwargs):
        with self._thread_slots.request() as slot:
            yield slot
            cqe = yield from super().io(*args, **kwargs)
        return cqe

    def _submission_layers(self, nbytes: int, is_write: bool):
        config = self.config
        yield "user", config.user_time + config.syscall_time
        yield "filesystem", config.filesystem_time
        yield "iomap", self.iomap.pin_time(nbytes)
        yield "blockio", config.blockio_time

    @property
    def concurrency(self) -> int:
        return self.threads


class LibaioStack(KernelStack):
    """libaio: asynchronous submission, interrupt-driven completion.

    ``io_submit`` batches amortize the syscall, but every request still
    walks the file-system and io_map layers; completions arrive by
    interrupt and are reaped with ``io_getevents``.
    """

    name = "libaio"

    def __init__(
        self,
        platform: Platform,
        queue_depth: Optional[int] = None,
        batch_size: int = 32,
        cost_model: Optional[LibaioCostConfig] = None,
        reliability=None,
    ):
        config = platform.config.kernel_io
        super().__init__(
            platform,
            completion_cost=config.interrupt_time,
            submit_threads=config.libaio_threads,
            config=config,
            reliability=reliability,
        )
        self.queue_depth = queue_depth or config.libaio_queue_depth
        self.batch_size = max(1, batch_size)
        self.cost_model = cost_model or platform.config.libaio_cost

    def _submission_layers(self, nbytes: int, is_write: bool):
        config = self.config
        yield "user", (
            config.user_time + config.syscall_time / self.batch_size
        )
        yield "filesystem", config.filesystem_time
        yield "iomap", self.iomap.pin_time(nbytes)
        yield "blockio", config.blockio_time

    def _charge_instructions(self, is_write: bool) -> dict:
        model = self.cost_model
        inflation = self.config.write_inflation if is_write else 1.0
        kernel_instructions = model.instructions_per_request * inflation
        self.accountant.charge("kernel", kernel_instructions, model.ipc)
        self.accountant.charge(
            "interrupt", model.interrupt_instructions, model.ipc
        )
        total = kernel_instructions + model.interrupt_instructions
        return {"instructions": total, "cycles": total / model.ipc}

    @property
    def concurrency(self) -> int:
        return self.queue_depth


class IoUringStack(KernelStack):
    """io_uring in interrupt or completion-polling mode.

    Submission avoids the per-request syscall entirely (shared rings);
    the kernel layers remain.  Poll mode trades the interrupt cost for a
    cheaper kernel-side poll share per completion.

    ``fixed_buffers`` models ``IORING_REGISTER_BUFFERS``: destination
    pages are pinned once up front, so the per-request io_map cost
    collapses to a residual lookup — the kernel-side version of the
    paper's "map once before batching access" observation.  The file-
    system and block layers remain, which is why even this variant stays
    below the device's ability.
    """

    #: residual per-request io_map cost with registered buffers
    _FIXED_BUFFER_RESIDUAL = 0.15

    def __init__(
        self,
        platform: Platform,
        poll_mode: bool = False,
        queue_depth: Optional[int] = None,
        fixed_buffers: bool = False,
        reliability=None,
    ):
        config = platform.config.kernel_io
        completion_cost = (
            0.30e-6 if poll_mode else config.interrupt_time * 0.75
        )
        super().__init__(
            platform,
            completion_cost=completion_cost,
            submit_threads=config.io_uring_threads,
            config=config,
            reliability=reliability,
        )
        self.poll_mode = poll_mode
        self.fixed_buffers = fixed_buffers
        self.queue_depth = queue_depth or config.io_uring_queue_depth
        self.name = "io_uring poll" if poll_mode else "io_uring int"
        if fixed_buffers:
            self.name += " (fixed buffers)"

    def _submission_layers(self, nbytes: int, is_write: bool):
        config = self.config
        # ring-based submission: no syscall, smaller user share
        yield "user", config.user_time * 0.5
        yield "filesystem", config.filesystem_time
        iomap = self.iomap.pin_time(nbytes)
        if self.fixed_buffers:
            iomap *= self._FIXED_BUFFER_RESIDUAL
        yield "iomap", iomap
        yield "blockio", config.blockio_time

    def _unpin_cost(self, nbytes: int) -> float:
        base = self.iomap.pin_time(nbytes) * 0.4
        if self.fixed_buffers:
            base *= self._FIXED_BUFFER_RESIDUAL
        return base

    @property
    def concurrency(self) -> int:
        return self.queue_depth
