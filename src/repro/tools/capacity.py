"""Throughput what-if calculator.

Examples::

    python -m repro.tools.capacity --backend cam
    python -m repro.tools.capacity --backend spdk --granularity 4096 \\
        --dram-channels 2 --write
    python -m repro.tools.capacity --backend bam --ssds 6 --explain

Prints the sustainable rate of the chosen control plane on the Table III
testbed (or a variant) and, with ``--explain``, every pipeline stage's
individual limit so the bottleneck is obvious.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import PlatformConfig
from repro.model.throughput import BACKENDS, ThroughputModel
from repro.units import pretty_bytes, to_gb_per_s


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Steady-state throughput calculator for the CAM "
        "reproduction's control planes."
    )
    parser.add_argument("--backend", choices=sorted(BACKENDS),
                        default="cam")
    parser.add_argument("--granularity", type=int, default=4096,
                        help="request size in bytes (default 4096)")
    parser.add_argument("--ssds", type=int, default=12)
    parser.add_argument("--write", action="store_true",
                        help="random write instead of random read")
    parser.add_argument("--cores", type=int, default=None,
                        help="CPU threads / reactors (SMs for bam)")
    parser.add_argument("--dram-channels", type=int, default=None)
    parser.add_argument("--discontiguous", action="store_true",
                        help="bounce path: one cudaMemcpy per request")
    parser.add_argument("--explain", action="store_true",
                        help="print every stage's individual limit")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = PlatformConfig(num_ssds=args.ssds)
    model = ThroughputModel(config)
    kwargs = dict(
        granularity=args.granularity,
        is_write=args.write,
        num_ssds=args.ssds,
        cores=args.cores,
        dram_channels=args.dram_channels,
        contiguous_dest=not args.discontiguous,
    )
    rate = model.throughput(args.backend, **kwargs)
    direction = "write" if args.write else "read"
    print(
        f"{args.backend}: random {direction} at "
        f"{pretty_bytes(args.granularity)} on {args.ssds} SSDs -> "
        f"{to_gb_per_s(rate):.2f} GB/s"
    )
    if args.explain:
        explained = model.explain(args.backend, **kwargs)
        bottleneck = explained.pop("bottleneck")
        achieved = explained.pop("achieved")
        print("\nstage limits:")
        for stage, limit in sorted(explained.items(), key=lambda kv: kv[1]):
            marker = "  <-- bottleneck" if stage == bottleneck else ""
            print(f"  {stage:<20} {to_gb_per_s(limit):8.2f} GB/s{marker}")
        print(f"\nachieved: {to_gb_per_s(achieved):.2f} GB/s "
              f"(bound by {bottleneck})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
