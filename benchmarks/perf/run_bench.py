"""Performance harness for the simulator itself.

Measures three layers and writes the results to ``BENCH_perf.json``:

* **engine** — events/second on the core primitives (timeout chains,
  store producer/consumer, contended resources).  These bound how large a
  per-request experiment can get.
* **experiments** — wall-clock per experiment id (quick mode), i.e. the
  cost of regenerating each paper artifact.
* **batch_sweep** — the headline number for the coalesced submission
  path: a fig08-scale batch workload (8 SSDs, 10 doorbell batches of
  8192 x 4 KiB reads) pushed through :class:`~repro.core.control.CamManager`
  with ``coalesce=True`` vs the per-request fan-out path, compared
  against the recorded pre-overhaul baseline.  The simulated end time is
  reported alongside so a wall-clock win can never silently come from a
  changed simulation.
* **reliability_sweep** — the same workload with the full reliability
  bundle attached (retries, circuit breakers, watchdog deadlines):
  coalesced+reliability vs fan-out+reliability, pinning down that
  keeping fault tolerance does not force the slow submission path.
* **metrics_sweep** — the coalesced workload again with the live
  telemetry stack attached (metrics registry + periodic sampler):
  instrumented vs plain wall-clock, plus the proof obligation that the
  sampler does not perturb the simulation (identical ``sim_end``).  The
  overhead target is advisory (CI treats it as a soft failure).
* **serving_sweep** — written to ``BENCH_serving.json``: the KV-cache
  serving benchmark (ISSUE 7) across concurrent-session counts on CAM
  vs BaM vs GDS with a fixed KV residency budget.  Hard gates: CAM's
  TTFT p99 beats BaM's at the largest session count, and the
  metrics-instrumented run is simulated-time-identical to the plain
  run.
* **cache_sweep** — written to ``BENCH_cache.json``: the GPU-memory
  cache tier (ISSUE 8) on the reuse-heavy graph-sampling and serving
  workloads, cache-off vs cache-on vs cache+readahead.  Hard gates:
  cache+readahead CAM throughput >= cache-off CAM on both panels, and
  the cache-off serving runs end at the exact pre-PR simulated time.
* **disagg_sweep** — written to ``BENCH_disagg.json``: the
  disaggregated flash tier (ISSUE 9) on the cache-friendly zipfian
  workload, local-only vs remote-direct vs tiered, plus a fabric
  partition under mixed traffic.  Hard gates: tiered goodput >= 80 %
  of local-only, the partition never hangs or loses an acked write,
  and ``batch_sweep(True)`` with the disagg stack unused replays the
  exact pre-PR simulated history.
* **autotune_sweep** — written to ``BENCH_autotune.json``: the fig12
  pipeline loop across compute/I-O mixes under the closed-loop
  :class:`~repro.core.elastic.ElasticController` vs every static core
  count in the paper band.  Hard gates: the controller's simulated
  throughput must match or beat the best static allocation on every
  mix, and every sampled core count must stay inside [N/4, N/2].

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/run_bench.py

No third-party dependencies; everything is stdlib + the repro package.
"""

from __future__ import annotations

import argparse
import json
import platform as platform_module
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import PlatformConfig
from repro.core.control import BatchRequest, CamManager
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.hw.platform import Platform
from repro.sim import Environment, Resource, Store

#: pre-overhaul reference for the batch sweep below, measured on the
#: commit preceding this harness (fan-out submission, pre-hot-path
#: engine).  Wall-clock is machine-specific — re-measure with
#: ``--baseline-wall`` when comparing on different hardware; the event
#: count and simulated end time are deterministic and portable.
BASELINE = {
    "commit": "1ffbce6",
    "wall_s": 8.017,
    "events": 1474646,
    "sim_end": 0.018738141,
}

#: the wall-clock improvement the coalesced path must hold vs BASELINE
SPEEDUP_TARGET = 3.0

#: the wall-clock improvement coalesced+reliability must hold over
#: fan-out+reliability on the same workload (ISSUE 4: keeping retries,
#: watchdogs and breakers must not force the slow submission path)
RELIABILITY_SPEEDUP_TARGET = 2.0

#: instrumented / plain wall-clock ceiling for the telemetry stack
#: (ISSUE 5).  Advisory: the CI telemetry job soft-fails past this.
METRICS_OVERHEAD_TARGET = 1.05

#: static core counts the autotune sweep races the controller against
#: (the paper band endpoints for 12 SSDs, plus a midpoint)
AUTOTUNE_STATIC_CORES = (3, 4, 6)

#: concurrent-session points for the serving sweep (ISSUE 7); quick is
#: the CI shape — the gate must already hold at its top point
SERVING_SESSION_COUNTS = (100, 1000, 10000)
SERVING_QUICK_COUNTS = (50, 150, 400)

#: float slack on the autotuned >= best-static throughput gate — the
#: tie case (identical simulated runs) must not fail on rounding
AUTOTUNE_TOLERANCE = 1e-6

#: serving session counts for the GPU-cache sweep (ISSUE 8) and the
#: pre-PR ``sim_end`` of each cache-off CAM run, measured on commit
#: 784ef20 — cache-off must stay bit-identical to the pre-cache build
CACHE_SERVING_SESSIONS = (100, 250)
CACHE_OFF_SIM_END = {
    100: 0.14012175802083016,
    250: 0.17987053305953946,
}

#: GPU cache size for the serving points (64 KiB KV-block lines)
CACHE_GPU_BLOCKS = 2048

#: tiered goodput floor vs local-only on the cache-friendly disagg
#: workload (ISSUE 9): the write-back tier must recover at least this
#: fraction of direct-attached goodput
DISAGG_GOODPUT_FLOOR = 0.80

#: pre-PR simulated end time of ``batch_sweep(True)`` (commit 295ed5b)
#: — with repro.net unused, the disagg machinery must be a pure
#: bystander: the local control plane replays bit-identically
DISAGG_UNUSED_SIM_END = 0.018738140996340358


def _best_of(rounds, fn):
    best = None
    for _ in range(rounds):
        sample = fn()
        if best is None or sample[0] < best[0]:
            best = sample
    return best


# -- engine primitives -----------------------------------------------------

def bench_timeout_chain(n=200_000):
    env = Environment()

    def ticker():
        for _ in range(n):
            yield env.timeout(1.0)

    proc = env.process(ticker())
    t0 = time.perf_counter()
    env.run(proc)
    return time.perf_counter() - t0, env.events_processed, n


def bench_store_pingpong(n=100_000):
    env = Environment()
    store = Store(env, capacity=64)

    def producer():
        for item in range(n):
            yield store.put(item)

    def consumer():
        for _ in range(n):
            yield store.get()

    env.process(producer())
    env.process(consumer())
    t0 = time.perf_counter()
    env.run()
    # ops = puts + gets; most are satisfied synchronously (born-processed
    # events), so heap-event counts alone undersell this path
    return time.perf_counter() - t0, env.events_processed, 2 * n


def bench_resource_contention(users=64, iterations=2_000):
    env = Environment()
    resource = Resource(env, capacity=4)

    def user():
        for _ in range(iterations):
            with resource.request() as req:
                yield req
                yield env.timeout(0.1)

    for _ in range(users):
        env.process(user())
    t0 = time.perf_counter()
    env.run()
    return time.perf_counter() - t0, env.events_processed, users * iterations


ENGINE_BENCHES = {
    "timeout_chain": bench_timeout_chain,
    "store_pingpong": bench_store_pingpong,
    "resource_contention": bench_resource_contention,
}


# -- the coalesced-submission headline ------------------------------------

def batch_sweep(coalesce, num_ssds=8, batches=10, requests=8192,
                granularity=4096):
    """Fig08-scale read batches through the CAM control plane."""
    platform = Platform(PlatformConfig(num_ssds=num_ssds), functional=False)
    manager = CamManager(platform, coalesce=coalesce)
    env = platform.env
    t0 = time.perf_counter()
    for index in range(batches):
        lbas = (np.arange(requests, dtype=np.int64) * 3 + index) % (1 << 20)
        env.run(
            manager.ring(
                BatchRequest(
                    lbas=lbas, granularity=granularity, is_write=False
                )
            )
        )
    return time.perf_counter() - t0, env.events_processed, env.now


def batch_sweep_reliable(coalesce, num_ssds=8, batches=10, requests=8192,
                         granularity=4096):
    """The same fig08-scale workload with the full reliability bundle
    attached (retries + circuit breakers + per-request watchdog
    deadlines) — the ISSUE 4 hot-path-with-reliability headline."""
    from repro.reliability import Reliability

    platform = Platform(PlatformConfig(num_ssds=num_ssds), functional=False)
    reliability = Reliability(platform)
    manager = CamManager(
        platform, coalesce=coalesce, reliability=reliability
    )
    env = platform.env
    t0 = time.perf_counter()
    for index in range(batches):
        lbas = (np.arange(requests, dtype=np.int64) * 3 + index) % (1 << 20)
        env.run(
            manager.ring(
                BatchRequest(
                    lbas=lbas, granularity=granularity, is_write=False
                )
            )
        )
    return time.perf_counter() - t0, env.events_processed, env.now


def batch_sweep_instrumented(coalesce=True, num_ssds=8, batches=10,
                             requests=8192, granularity=4096,
                             interval=100e-6):
    """The fig08-scale workload with the ISSUE 5 telemetry stack live:
    metrics registry installed on the environment, hot paths pushing
    counters/histograms, and a :class:`~repro.obs.MetricsSampler`
    polling queue depths and busy fractions every ``interval`` sim
    seconds.  Same return shape as :func:`batch_sweep` so the two are
    directly comparable."""
    from repro.obs import install_metrics, install_sampler

    platform = Platform(PlatformConfig(num_ssds=num_ssds), functional=False)
    manager = CamManager(platform, coalesce=coalesce)
    env = platform.env
    metrics = install_metrics(env)
    sampler = install_sampler(metrics, manager=manager, interval=interval)
    t0 = time.perf_counter()
    for index in range(batches):
        lbas = (np.arange(requests, dtype=np.int64) * 3 + index) % (1 << 20)
        env.run(
            manager.ring(
                BatchRequest(
                    lbas=lbas, granularity=granularity, is_write=False
                )
            )
        )
    wall = time.perf_counter() - t0
    sampler.stop()
    return wall, env.events_processed, env.now


# -- the elastic autotune sweep (fig12 closed-loop) -------------------------

def autotune_sweep(iterations=8):
    """Race the elastic controller against static core counts per mix.

    For each compute/I-O mix in
    :data:`repro.experiments.extras.ELASTIC_MIXES`, runs the same fig12
    pipeline loop under the closed-loop controller and under each static
    allocation in :data:`AUTOTUNE_STATIC_CORES`, comparing *simulated*
    throughput (bytes / simulated seconds — wall-clock noise cannot
    decide this gate).  Also integrates active cores over time: the
    controller's win is equal throughput at fewer core-seconds.
    """
    from repro.experiments.extras import ELASTIC_MIXES, _elastic_loop

    mixes = {}
    all_met = True
    for mix, compute_time in ELASTIC_MIXES:
        t0 = time.perf_counter()
        out = _elastic_loop(compute_time, iterations)
        harness_wall = time.perf_counter() - t0
        lo, hi = out["bounds"]
        in_band = (
            lo <= out["min_cores_seen"] <= out["max_cores_seen"] <= hi
        )
        elastic = {
            "sim_s": out["wall"],
            "throughput_bytes_per_s": out["bytes"] / out["wall"],
            "final_cores": out["final_cores"],
            "min_cores_seen": out["min_cores_seen"],
            "max_cores_seen": out["max_cores_seen"],
            "core_seconds": round(out["core_seconds"], 9),
            "resizes": out["resizes"],
            "in_band": in_band,
        }
        statics = {}
        for cores in AUTOTUNE_STATIC_CORES:
            sout = _elastic_loop(
                compute_time, iterations,
                controller=False, static_cores=cores,
            )
            statics[str(cores)] = {
                "sim_s": sout["wall"],
                "throughput_bytes_per_s": sout["bytes"] / sout["wall"],
                "core_seconds": round(sout["core_seconds"], 9),
            }
        best_static = max(
            statics.values(), key=lambda s: s["throughput_bytes_per_s"]
        )
        best = best_static["throughput_bytes_per_s"]
        met = (
            in_band
            and elastic["throughput_bytes_per_s"]
            >= best * (1 - AUTOTUNE_TOLERANCE)
        )
        all_met = all_met and met
        mixes[mix] = {
            "compute_time_s": compute_time,
            "harness_wall_s": round(harness_wall, 3),
            "elastic": elastic,
            "static": statics,
            "best_static_throughput_bytes_per_s": best,
            "core_seconds_saved_vs_static_max": round(
                statics[str(max(AUTOTUNE_STATIC_CORES))]["core_seconds"]
                - elastic["core_seconds"], 9,
            ),
            "target_met": met,
        }
    return {
        "workload": {
            "num_ssds": 12, "iterations": iterations,
            "requests_per_batch": 2048, "granularity": 4096,
            "static_cores": list(AUTOTUNE_STATIC_CORES),
        },
        "band": [3, 6],
        "tolerance": AUTOTUNE_TOLERANCE,
        "mixes": mixes,
        "target_met": all_met,
    }


def serving_sweep(session_counts=SERVING_SESSION_COUNTS):
    """The KV-cache serving benchmark: CAM vs BaM vs GDS TTFT tails.

    For each session count, serves the same deterministic session pool
    (seed-pinned arrivals, think times, context/decode lengths) over
    each backend with a fixed KV residency budget, so memory pressure
    grows with concurrency and evicted blocks must be prefetched from
    SSD on the turn's critical path — unless the backend's API is
    asynchronous (CAM), which overlaps the load with prefill compute.

    Hard gates: CAM's TTFT p99 beats BaM's at the largest session
    count, and a metrics-instrumented CAM run ends at the exact same
    simulated time as the plain run (telemetry observes, never
    perturbs).
    """
    from repro.experiments.serving import (
        CAPACITY_BLOCKS,
        MAX_CONCURRENT_DECODES,
        NUM_SSDS,
        SESSION_KWARGS,
        serve_once,
    )

    points = []
    for num_sessions in session_counts:
        row = {"sessions": num_sessions, "backends": {}}
        for name in ("cam", "bam", "gds"):
            t0 = time.perf_counter()
            run, sim_end = serve_once(name, num_sessions)
            row["backends"][name] = {
                "wall_s": round(time.perf_counter() - t0, 3),
                "sim_s": run.elapsed_s,
                "sim_end": sim_end,
                "ttft_p50_ms": round(run.ttft_p50 * 1e3, 4),
                "ttft_p99_ms": round(run.ttft_p99 * 1e3, 4),
                "tokens_per_s": round(run.tokens_per_s, 1),
                "kv_hit_rate": round(run.kv_hit_rate, 4),
                "kv_evictions": run.kv_evictions,
                "overload_retries": run.overload_retries,
            }
        points.append(row)

    top = points[-1]["backends"]
    cam_beats_bam = top["cam"]["ttft_p99_ms"] < top["bam"]["ttft_p99_ms"]

    # telemetry differential: the instrumented run must replay the
    # plain run's simulated history exactly
    diff_sessions = session_counts[0]
    _, end_plain = serve_once("cam", diff_sessions)
    _, end_instrumented = serve_once("cam", diff_sessions, metrics=True)
    metrics_identical = end_plain == end_instrumented

    return {
        "workload": {
            "num_ssds": NUM_SSDS,
            "capacity_blocks": CAPACITY_BLOCKS,
            "max_concurrent_decodes": MAX_CONCURRENT_DECODES,
            "session_counts": list(session_counts),
            **SESSION_KWARGS,
        },
        "points": points,
        "cam_ttft_p99_beats_bam_at_top": cam_beats_bam,
        "metrics_differential": {
            "sessions": diff_sessions,
            "sim_end_plain": end_plain,
            "sim_end_instrumented": end_instrumented,
            "identical": metrics_identical,
        },
        "target_met": cam_beats_bam and metrics_identical,
    }


def cache_sweep():
    """The GPU-cache tier on the reuse-heavy workloads (ISSUE 8).

    Two panels, three modes each (``off`` / ``cache`` / ``cache+ra``):

    * **graph** — power-law feature extraction through the CAM plane;
      throughput is *demand* feature bytes over simulated seconds, so
      wasted speculation shows up as a loss, not a gain;
    * **serving** — the KV-cache serving scenario with a GPU cache in
      front of the prefetch path.

    Hard gates: cache+readahead CAM throughput >= cache-off CAM on
    both panels, and every cache-off serving run ends at the exact
    pre-PR simulated time (:data:`CACHE_OFF_SIM_END`) — the cache tier
    must be a pure no-op when not constructed.
    """
    from repro.experiments.gpucache import (
        FEATURE_BYTES,
        GRAPH_KWARGS,
        graph_cache_once,
    )
    from repro.experiments.serving import serve_once

    graph = {}
    for mode in ("off", "cache", "cache+ra"):
        t0 = time.perf_counter()
        summary, sim_end = graph_cache_once(mode)
        graph[mode] = {
            "wall_s": round(time.perf_counter() - t0, 3),
            "sim_end": sim_end,
            "bytes_per_s": round(summary["bytes_per_s"], 1),
            "hit_rate": round(summary["hit_rate"], 4),
            "readahead_issued": summary["readahead_issued"],
            "readahead_used": summary["readahead_used"],
            "readahead_accuracy": round(
                summary["readahead_accuracy"], 4
            ),
        }
    graph_gate = (
        graph["cache+ra"]["bytes_per_s"] >= graph["off"]["bytes_per_s"]
    )

    serving_points = []
    serving_gate = True
    bit_identical = True
    for sessions in CACHE_SERVING_SESSIONS:
        row = {"sessions": sessions, "modes": {}}
        for mode, kwargs in (
            ("off", {}),
            ("cache", dict(gpu_cache_blocks=CACHE_GPU_BLOCKS,
                           readahead=False)),
            ("cache+ra", dict(gpu_cache_blocks=CACHE_GPU_BLOCKS,
                              readahead=True)),
        ):
            t0 = time.perf_counter()
            run, sim_end = serve_once("cam", sessions, **kwargs)
            row["modes"][mode] = {
                "wall_s": round(time.perf_counter() - t0, 3),
                "sim_end": sim_end,
                "tokens_per_s": round(run.tokens_per_s, 1),
                "ttft_p99_ms": round(run.ttft_p99 * 1e3, 4),
                "kv_hit_rate": round(run.kv_hit_rate, 4),
            }
        identical = (
            row["modes"]["off"]["sim_end"] == CACHE_OFF_SIM_END[sessions]
        )
        row["cache_off_sim_end_expected"] = CACHE_OFF_SIM_END[sessions]
        row["cache_off_sim_end_identical"] = identical
        bit_identical = bit_identical and identical
        serving_gate = serving_gate and (
            row["modes"]["cache+ra"]["tokens_per_s"]
            >= row["modes"]["off"]["tokens_per_s"]
        )
        serving_points.append(row)

    return {
        "graph_workload": {
            **GRAPH_KWARGS,
            "feature_bytes": FEATURE_BYTES,
            "points": graph,
        },
        "serving_workload": {
            "gpu_cache_blocks": CACHE_GPU_BLOCKS,
            "points": serving_points,
        },
        "graph_readahead_beats_off": graph_gate,
        "serving_readahead_beats_off": serving_gate,
        "cache_off_bit_identical": bit_identical,
        "target_met": graph_gate and serving_gate and bit_identical,
    }


def disagg_sweep():
    """The disaggregated flash tier (ISSUE 9): three hard gates.

    * **goodput** — on the cache-friendly zipfian workload the
      write-back tier must keep >= :data:`DISAGG_GOODPUT_FLOOR` of the
      local-only (direct-attached) goodput; the fabric may only tax
      misses and batched write-backs.
    * **partition** — a 1 ms full fabric partition under closed-loop
      mixed traffic: every request completes or fails typed (no
      hangs), the tier heals, the post-heal resync drains the dirty
      log, and a remote read-back of every acked write finds no lost
      or stale data.
    * **bystander** — ``batch_sweep(True)`` with the disagg stack
      merely importable must end at the exact pre-PR simulated time.
    """
    from repro.experiments.disagg import WORKLOAD, disagg_goodput
    from repro.experiments.extras import _chaos_disagg

    t0 = time.perf_counter()
    rates = disagg_goodput(quick=True)
    goodput_wall = round(time.perf_counter() - t0, 3)
    local = rates["local-only"]["gb_per_s"]
    ratio = rates["tiered"]["gb_per_s"] / local if local else 0.0
    goodput_gate = ratio >= DISAGG_GOODPUT_FLOOR

    out = _chaos_disagg(requests=160, partition=(0.5e-3, 1.0e-3))
    partition = {
        key: out[key] for key in (
            "offered", "ok", "errors", "degraded_entries", "resyncs",
            "queued_writes", "degraded_misses", "dirty_after", "healed",
            "verify_failures", "readback_failures", "written_pages",
        )
    }
    partition["error_types"] = sorted(out["error_types"])
    partition_gate = (
        out["ok"] + out["errors"] == out["offered"]
        and out["degraded_entries"] >= 1
        and out["dirty_after"] == 0
        and out["healed"]
        and out["verify_failures"] == 0
        and out["readback_failures"] == 0
    )

    _, _, sim_end = batch_sweep(True)
    bystander = sim_end == DISAGG_UNUSED_SIM_END

    return {
        "workload": dict(WORKLOAD),
        "goodput_wall_s": goodput_wall,
        "configs": rates,
        "tiered_vs_local": round(ratio, 4),
        "goodput_floor": DISAGG_GOODPUT_FLOOR,
        "goodput_gate_met": goodput_gate,
        "partition": partition,
        "partition_gate_met": partition_gate,
        "bystander": {
            "sim_end": sim_end,
            "expected": DISAGG_UNUSED_SIM_END,
            "identical": bystander,
        },
        "target_met": goodput_gate and partition_gate and bystander,
    }


# -- harness ---------------------------------------------------------------

def _git_commit():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True, timeout=10,
        ).stdout.strip()
    except Exception:
        return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_perf.json",
        help="where to write the results (default: ./BENCH_perf.json)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="best-of-N rounds for wall-clock numbers (default 3)",
    )
    parser.add_argument(
        "--skip-experiments", action="store_true",
        help="skip the per-experiment wall-clock section",
    )
    parser.add_argument(
        "--baseline-wall", type=float, default=None,
        help="override the recorded pre-overhaul wall seconds "
        "(re-measure on this machine with the baseline commit)",
    )
    parser.add_argument(
        "--autotune-output", default="BENCH_autotune.json",
        help="where to write the elastic autotune sweep "
        "(default: ./BENCH_autotune.json)",
    )
    parser.add_argument(
        "--only-autotune", action="store_true",
        help="run only the elastic autotune sweep (the CI autotune job)",
    )
    parser.add_argument(
        "--serving-output", default="BENCH_serving.json",
        help="where to write the KV-cache serving sweep "
        "(default: ./BENCH_serving.json)",
    )
    parser.add_argument(
        "--only-serving", action="store_true",
        help="run only the KV-cache serving sweep (the CI serving job)",
    )
    parser.add_argument(
        "--serving-quick", action="store_true",
        help="reduced serving session counts "
        f"{SERVING_QUICK_COUNTS} instead of {SERVING_SESSION_COUNTS}",
    )
    parser.add_argument(
        "--cache-output", default="BENCH_cache.json",
        help="where to write the GPU-cache sweep "
        "(default: ./BENCH_cache.json)",
    )
    parser.add_argument(
        "--only-cache", action="store_true",
        help="run only the GPU-cache sweep (the CI cache job)",
    )
    parser.add_argument(
        "--disagg-output", default="BENCH_disagg.json",
        help="where to write the disaggregated-tier sweep "
        "(default: ./BENCH_disagg.json)",
    )
    parser.add_argument(
        "--only-disagg", action="store_true",
        help="run only the disaggregated-tier sweep (the CI disagg job)",
    )
    args = parser.parse_args(argv)

    def run_autotune():
        print("== autotune sweep (12 SSDs, elastic vs static cores) ==")
        auto = autotune_sweep()
        for mix, cell in auto["mixes"].items():
            elastic = cell["elastic"]
            print(
                f"  {mix:14s} elastic {elastic['throughput_bytes_per_s'] / 1e9:6.2f} "
                f"GB/s @ cores {elastic['min_cores_seen']}..."
                f"{elastic['max_cores_seen']} | best static "
                f"{cell['best_static_throughput_bytes_per_s'] / 1e9:6.2f} GB/s "
                f"| saved {cell['core_seconds_saved_vs_static_max'] * 1e3:.2f} "
                f"core-ms (met: {cell['target_met']})"
            )
        print(f"  autotuned >= best static and in-band everywhere: "
              f"{auto['target_met']}")
        auto_output = Path(args.autotune_output)
        auto_output.write_text(json.dumps(auto, indent=2) + "\n")
        print(f"wrote {auto_output}")
        return auto

    def run_serving():
        counts = (
            SERVING_QUICK_COUNTS if args.serving_quick
            else SERVING_SESSION_COUNTS
        )
        print(f"== serving sweep (KV cache on SSD, sessions {counts}) ==")
        serving = serving_sweep(counts)
        for point in serving["points"]:
            cells = "  ".join(
                f"{name} p99={cell['ttft_p99_ms']:8.2f} ms"
                for name, cell in point["backends"].items()
            )
            print(f"  {point['sessions']:6d} sessions  {cells}")
        print(f"  cam p99 < bam p99 at top count: "
              f"{serving['cam_ttft_p99_beats_bam_at_top']}")
        print(f"  metrics-on sim_end identical: "
              f"{serving['metrics_differential']['identical']}")
        serving_output = Path(args.serving_output)
        serving_output.write_text(json.dumps(serving, indent=2) + "\n")
        print(f"wrote {serving_output}")
        return serving

    def run_cache():
        print("== cache sweep (GPU cache tier + readahead) ==")
        cache = cache_sweep()
        for mode, cell in cache["graph_workload"]["points"].items():
            print(
                f"  graph {mode:9s} {cell['bytes_per_s'] / 1e9:6.2f} "
                f"GB/s  hit {cell['hit_rate']:6.1%}  readahead "
                f"{cell['readahead_used']}/{cell['readahead_issued']}"
            )
        for point in cache["serving_workload"]["points"]:
            cells = "  ".join(
                f"{mode} {cell['tokens_per_s']:9.1f} tok/s"
                for mode, cell in point["modes"].items()
            )
            print(f"  serve {point['sessions']:4d} sessions  {cells}")
        print(f"  cache+ra >= off (graph): "
              f"{cache['graph_readahead_beats_off']}")
        print(f"  cache+ra >= off (serving): "
              f"{cache['serving_readahead_beats_off']}")
        print(f"  cache-off bit-identical to pre-PR: "
              f"{cache['cache_off_bit_identical']}")
        cache_output = Path(args.cache_output)
        cache_output.write_text(json.dumps(cache, indent=2) + "\n")
        print(f"wrote {cache_output}")
        return cache

    def run_disagg_bench():
        print("== disagg sweep (remote flash tier, 2 replica nodes) ==")
        disagg = disagg_sweep()
        for config, cell in disagg["configs"].items():
            print(
                f"  {config:14s} {cell['gb_per_s']:6.2f} GB/s  "
                f"hit {cell['hit_rate']:6.1%}  p99 {cell['p99_us']:7.1f} us"
            )
        print(f"  tiered/local: {disagg['tiered_vs_local']} "
              f"(floor {disagg['goodput_floor']}, met: "
              f"{disagg['goodput_gate_met']})")
        part = disagg["partition"]
        print(f"  partition: {part['ok']}/{part['offered']} ok, "
              f"{part['errors']} typed errors, resyncs {part['resyncs']}, "
              f"dirty after {part['dirty_after']}, readback failures "
              f"{part['readback_failures']} (met: "
              f"{disagg['partition_gate_met']})")
        print(f"  unused-stack sim_end identical: "
              f"{disagg['bystander']['identical']}")
        disagg_output = Path(args.disagg_output)
        disagg_output.write_text(json.dumps(disagg, indent=2) + "\n")
        print(f"wrote {disagg_output}")
        return disagg

    if args.only_autotune:
        return 0 if run_autotune()["target_met"] else 1

    if args.only_disagg:
        return 0 if run_disagg_bench()["target_met"] else 1

    if args.only_serving:
        return 0 if run_serving()["target_met"] else 1

    if args.only_cache:
        return 0 if run_cache()["target_met"] else 1

    results = {
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform_module.platform(),
            "commit": _git_commit(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "rounds": args.rounds,
        },
        "engine": {},
        "experiments": {},
        "batch_sweep": {},
    }

    print("== engine primitives ==")
    for name, bench in ENGINE_BENCHES.items():
        wall, events, ops = _best_of(args.rounds, bench)
        results["engine"][name] = {
            "wall_s": round(wall, 4),
            "events": events,
            "ops": ops,
            "ops_per_sec": round(ops / wall) if wall > 0 else 0,
            "events_per_sec": round(events / wall) if wall > 0 else 0,
        }
        print(f"  {name:24s} {ops / wall / 1e6:7.2f} M ops/s "
              f"({events} heap events)")

    if not args.skip_experiments:
        print("== experiments (quick) ==")
        for exp_id in EXPERIMENTS:
            t0 = time.perf_counter()
            run_experiment(exp_id, quick=True)
            wall = time.perf_counter() - t0
            results["experiments"][exp_id] = {"wall_s": round(wall, 3)}
            print(f"  {exp_id:8s} {wall:6.2f} s")

    print("== batch sweep (8 SSDs, 10 x 8192 reads, 4 KiB) ==")
    co_wall, co_events, co_end = _best_of(
        args.rounds, lambda: batch_sweep(True)
    )
    fan_wall, fan_events, fan_end = _best_of(
        args.rounds, lambda: batch_sweep(False)
    )
    baseline = dict(BASELINE)
    if args.baseline_wall is not None:
        baseline["wall_s"] = args.baseline_wall
        baseline["commit"] = f"{baseline['commit']} (wall re-measured)"
    sweep = {
        "workload": {
            "num_ssds": 8, "batches": 10, "requests_per_batch": 8192,
            "granularity": 4096, "is_write": False,
        },
        "coalesced": {
            "wall_s": round(co_wall, 3),
            "events": co_events,
            "sim_end": co_end,
        },
        "fanout": {
            "wall_s": round(fan_wall, 3),
            "events": fan_events,
            "sim_end": fan_end,
        },
        "baseline": baseline,
        "speedup_vs_baseline": round(baseline["wall_s"] / co_wall, 2),
        "speedup_vs_fanout": round(fan_wall / co_wall, 2),
        "event_reduction_vs_baseline": round(
            1 - co_events / baseline["events"], 3
        ),
        "speedup_target": SPEEDUP_TARGET,
    }
    # coalesced vs fanout must agree to full float precision; the
    # recorded baseline constant is rounded to 9 decimals
    identical = (
        co_end == fan_end
        and round(co_end, 9) == baseline["sim_end"]
    )
    sweep["sim_end_identical"] = identical
    sweep["target_met"] = (
        identical and sweep["speedup_vs_baseline"] >= SPEEDUP_TARGET
    )
    results["batch_sweep"] = sweep
    print(f"  coalesced {co_wall:6.2f} s  {co_events} events")
    print(f"  fanout    {fan_wall:6.2f} s  {fan_events} events")
    print(f"  baseline  {baseline['wall_s']:6.2f} s  "
          f"{baseline['events']} events ({baseline['commit']})")
    print(f"  speedup vs baseline: {sweep['speedup_vs_baseline']}x "
          f"(target {SPEEDUP_TARGET}x, met: {sweep['target_met']})")
    print(f"  sim_end identical: {identical}")

    print("== reliability sweep (same workload, retries+watchdog on) ==")
    rco_wall, rco_events, rco_end = _best_of(
        args.rounds, lambda: batch_sweep_reliable(True)
    )
    rfan_wall, rfan_events, rfan_end = _best_of(
        args.rounds, lambda: batch_sweep_reliable(False)
    )
    reliable = {
        "workload": dict(sweep["workload"]),
        "coalesced": {
            "wall_s": round(rco_wall, 3),
            "events": rco_events,
            "sim_end": rco_end,
        },
        "fanout": {
            "wall_s": round(rfan_wall, 3),
            "events": rfan_events,
            "sim_end": rfan_end,
        },
        "speedup_vs_fanout": round(rfan_wall / rco_wall, 2),
        "reliability_overhead_vs_fast_path": round(
            rco_wall / co_wall, 2
        ),
        "speedup_target": RELIABILITY_SPEEDUP_TARGET,
        # both reliable paths must see the exact same simulated run
        "sim_end_identical": rco_end == rfan_end,
    }
    reliable["target_met"] = (
        reliable["sim_end_identical"]
        and reliable["speedup_vs_fanout"] >= RELIABILITY_SPEEDUP_TARGET
    )
    results["reliability_sweep"] = reliable
    print(f"  coalesced+rel {rco_wall:6.2f} s  {rco_events} events")
    print(f"  fanout+rel    {rfan_wall:6.2f} s  {rfan_events} events")
    print(f"  speedup vs fanout+rel: {reliable['speedup_vs_fanout']}x "
          f"(target {RELIABILITY_SPEEDUP_TARGET}x, met: "
          f"{reliable['target_met']})")
    print(f"  reliability overhead vs fast path: "
          f"{reliable['reliability_overhead_vs_fast_path']}x wall")
    print(f"  sim_end identical: {reliable['sim_end_identical']}")

    print("== metrics sweep (same workload, telemetry stack live) ==")
    ins_wall, ins_events, ins_end = _best_of(
        args.rounds, lambda: batch_sweep_instrumented(True)
    )
    overhead = round(ins_wall / co_wall, 3) if co_wall > 0 else 0.0
    metrics_sweep = {
        "workload": dict(sweep["workload"]),
        "sampler_interval_s": 100e-6,
        "instrumented": {
            "wall_s": round(ins_wall, 3),
            "events": ins_events,
            "sim_end": ins_end,
        },
        "plain": {
            "wall_s": round(co_wall, 3),
            "events": co_events,
            "sim_end": co_end,
        },
        "overhead_ratio": overhead,
        "overhead_target": METRICS_OVERHEAD_TARGET,
        # the sampler adds timer events but must not move simulated
        # time: telemetry observes the run, it never changes it
        "sim_end_identical": ins_end == co_end,
    }
    metrics_sweep["target_met"] = (
        metrics_sweep["sim_end_identical"]
        and overhead <= METRICS_OVERHEAD_TARGET
    )
    results["metrics_sweep"] = metrics_sweep
    print(f"  instrumented {ins_wall:6.2f} s  {ins_events} events")
    print(f"  plain        {co_wall:6.2f} s  {co_events} events")
    print(f"  overhead: {overhead}x wall "
          f"(target <= {METRICS_OVERHEAD_TARGET}x, met: "
          f"{metrics_sweep['target_met']})")
    print(f"  sim_end identical: {metrics_sweep['sim_end_identical']}")

    auto = run_autotune()
    results["autotune_sweep"] = auto

    serving = run_serving()
    results["serving_sweep"] = serving

    cache = run_cache()
    results["cache_sweep"] = cache

    disagg = run_disagg_bench()
    results["disagg_sweep"] = disagg

    output = Path(args.output)
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {output}")
    # metrics_sweep is advisory (the CI telemetry job soft-gates on it);
    # the batch, reliability, autotune, serving and cache sweeps decide
    # the exit code
    return 0 if (
        sweep["target_met"]
        and reliable["target_met"]
        and auto["target_met"]
        and serving["target_met"]
        and cache["target_met"]
        and disagg["target_met"]
    ) else 1


if __name__ == "__main__":
    raise SystemExit(main())
