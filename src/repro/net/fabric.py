"""Network-fabric link model + network fault injector.

:class:`FabricLink` is the network sibling of
:class:`~repro.hw.pcie.PCIeFabric`: a shared, serializing pipe
(:class:`~repro.sim.links.BandwidthLink`) carrying RDMA-style messages
between the GPU server and a remote all-flash node, plus the three
things a network has that a PCIe complex does not:

* **propagation latency with jitter** — a fixed one-way latency per
  message, widened by deterministic jitter (FNV-hashed per message, the
  same no-RNG discipline as
  :class:`~repro.reliability.policy.RetryPolicy`);
* **packet loss** — each message is lost with the link's current loss
  probability; the sender notices after ``retransmit_timeout`` and
  retransmits, up to ``max_retransmits`` before surfacing a typed
  :class:`~repro.errors.NetworkError`;
* **partitions** — while the link is partitioned every frame is dropped
  on the floor; senders burn ``partition_detect`` seconds (the
  heartbeat/TCP-RST stand-in) and then fail with
  :class:`~repro.errors.LinkPartitionedError` instead of hanging.

:class:`NetworkFaultInjector` mirrors the device-side
:class:`~repro.hw.faults.FaultInjector` API: faults are *planned* as
windows of simulated time (``partition`` with a heal time, ``flap``
trains, ``brownout`` latency episodes, ``lossy`` windows) and the link
consults the plan as a pure function of ``env.now`` — no background
processes, so an unused injector perturbs nothing.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import (
    ConfigurationError,
    LinkPartitionedError,
    NetworkError,
)
from repro.sim.core import Environment
from repro.sim.links import BandwidthLink
from repro.sim.stats import Counter
from repro.units import US, gb_per_s


def _hash_unit(*parts: int) -> float:
    """Deterministic pseudo-random float in [0, 1) from integer parts
    (FNV-1a) — jitter and loss draws must not disturb RNG streams or
    depend on event order."""
    value = 2166136261
    for part in parts:
        value ^= part & 0xFFFFFFFF
        value = (value * 16777619) & 0xFFFFFFFF
    # FNV alone mixes consecutive small integers poorly (successive
    # retransmit draws for one message stay correlated, so a frame
    # could be "unlucky forever" at moderate loss rates); a murmur3
    # finalizer avalanches the low bits
    value ^= value >> 16
    value = (value * 0x85EBCA6B) & 0xFFFFFFFF
    value ^= value >> 13
    value = (value * 0xC2B2AE35) & 0xFFFFFFFF
    value ^= value >> 16
    return value / 2.0 ** 32


class NetworkFaultInjector:
    """Plants fabric-level failures as windows of simulated time.

    The network analogue of :class:`~repro.hw.faults.FaultInjector`:

    * :meth:`partition` — drop every frame on a link during
      ``[start, start + duration)``; the heal time is part of the plan;
    * :meth:`flap` — a train of short partitions (link bouncing);
    * :meth:`brownout` — multiply the link's latency during a window
      (congestion, a dying transceiver) without dropping frames;
    * :meth:`lossy` — raise the link's loss probability during a window;
    * :meth:`set_partitioned` — immediate manual control, for tests and
      degraded-mode scenarios that partition "now".

    Every query is a pure function of ``(link_id, now)`` so replaying a
    simulation replays the faults exactly.
    """

    def __init__(self):
        self._manual: set = set()
        #: link_id -> [(start, end)] partition windows
        self._partitions: Dict[str, List[Tuple[float, float]]] = {}
        #: link_id -> [(start, end, factor)] latency brownouts
        self._brownouts: Dict[str, List[Tuple[float, float, float]]] = {}
        #: link_id -> [(start, end, loss_rate)] lossy windows
        self._loss: Dict[str, List[Tuple[float, float, float]]] = {}
        self.partitions_planted = 0

    # -- planting -------------------------------------------------------
    def partition(
        self,
        link_id: str,
        start: float = 0.0,
        duration: float = float("inf"),
    ) -> None:
        """Partition ``link_id`` for ``[start, start + duration)``; the
        link heals itself when the window closes."""
        if duration <= 0:
            raise ConfigurationError(
                f"partition duration must be positive, got {duration}"
            )
        self._partitions.setdefault(link_id, []).append(
            (start, start + duration)
        )
        self.partitions_planted += 1

    def flap(
        self,
        link_id: str,
        start: float,
        period: float,
        count: int,
        down_fraction: float = 0.5,
    ) -> None:
        """A train of ``count`` short partitions: every ``period``
        seconds the link goes down for ``period * down_fraction``."""
        if period <= 0 or count < 1:
            raise ConfigurationError("flap needs period > 0 and count >= 1")
        if not 0.0 < down_fraction < 1.0:
            raise ConfigurationError(
                f"down_fraction must be in (0, 1), got {down_fraction}"
            )
        for index in range(count):
            self.partition(
                link_id, start + index * period, period * down_fraction
            )

    def brownout(
        self,
        link_id: str,
        factor: float,
        start: float = 0.0,
        duration: float = float("inf"),
    ) -> None:
        """Multiply ``link_id``'s latency by ``factor`` during the
        window (mirrors :meth:`FaultInjector.degrade`)."""
        if factor < 1.0:
            raise ConfigurationError(
                f"brownout factor must be >= 1, got {factor}"
            )
        self._brownouts.setdefault(link_id, []).append(
            (start, start + duration, factor)
        )

    def lossy(
        self,
        link_id: str,
        loss_rate: float,
        start: float = 0.0,
        duration: float = float("inf"),
    ) -> None:
        """Drop each frame with probability ``loss_rate`` during the
        window (on top of the link's base loss rate)."""
        if not 0.0 <= loss_rate <= 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1], got {loss_rate}"
            )
        self._loss.setdefault(link_id, []).append(
            (start, start + duration, loss_rate)
        )

    # -- manual control -------------------------------------------------
    def set_partitioned(self, link_id: str, partitioned: bool = True) -> None:
        """Partition (or heal) a link immediately, outside any window."""
        if partitioned:
            if link_id not in self._manual:
                self._manual.add(link_id)
                self.partitions_planted += 1
        else:
            self._manual.discard(link_id)

    # -- the link-side checks -------------------------------------------
    def is_partitioned(self, link_id: str, now: float) -> bool:
        if link_id in self._manual:
            return True
        for start, end in self._partitions.get(link_id, ()):
            if start <= now < end:
                return True
        return False

    def latency_factor(self, link_id: str, now: float) -> float:
        factor = 1.0
        for start, end, episode in self._brownouts.get(link_id, ()):
            if start <= now < end:
                factor *= episode
        return factor

    def loss_rate(self, link_id: str, now: float) -> float:
        rate = 0.0
        for start, end, episode in self._loss.get(link_id, ()):
            if start <= now < end:
                rate = 1.0 - (1.0 - rate) * (1.0 - episode)
        return rate

    def next_heal(self, link_id: str, now: float) -> Optional[float]:
        """When the partition covering ``now`` ends (``None`` when the
        link is up, ``inf`` while manually partitioned)."""
        if link_id in self._manual:
            return float("inf")
        heal = None
        for start, end in self._partitions.get(link_id, ()):
            if start <= now < end and (heal is None or end > heal):
                heal = end
        return heal


class FabricLink:
    """One network link between the GPU server and a remote flash node.

    Defaults model a 100 GbE / RDMA-style fabric: 12.5 GB/s raw, ~5 us
    one-way latency, 4 KiB MTU payloads with per-frame header overhead.
    The wire itself is a :class:`~repro.sim.links.BandwidthLink`, so
    concurrent messages share bandwidth exactly like PCIe transfers do.
    """

    def __init__(
        self,
        env: Environment,
        link_id: str,
        bandwidth: float = gb_per_s(12.5),
        latency: float = 5 * US,
        jitter: float = 1 * US,
        mtu_payload: int = 4096,
        header_bytes: int = 66,
        loss_rate: float = 0.0,
        retransmit_timeout: float = 100 * US,
        max_retransmits: int = 4,
        partition_detect: float = 50 * US,
        fault_injector: Optional[NetworkFaultInjector] = None,
    ):
        if latency < 0 or jitter < 0:
            raise ConfigurationError("latency and jitter must be >= 0")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {loss_rate}"
            )
        if max_retransmits < 0:
            raise ConfigurationError("max_retransmits must be >= 0")
        if partition_detect <= 0 or retransmit_timeout <= 0:
            raise ConfigurationError(
                "partition_detect and retransmit_timeout must be positive"
            )
        self.env = env
        self.link_id = link_id
        self.latency = latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.retransmit_timeout = retransmit_timeout
        self.max_retransmits = max_retransmits
        self.partition_detect = partition_detect
        self.fault_injector = fault_injector
        self.wire = BandwidthLink(
            env,
            name=f"net:{link_id}",
            bandwidth=bandwidth,
            header_bytes=header_bytes,
            max_payload=mtu_payload,
            transaction_bytes=header_bytes,
            chunk_bytes=256 * 1024,
        )
        self.transfers = Counter(env)
        self.retransmits = Counter(env)
        self.drops = Counter(env)
        #: transfers that failed on a partitioned link
        self.partition_failures = Counter(env)
        self._seq = 0
        #: last partitioned state this link *observed* (drives the
        #: net_link_down / net_link_up tracer instants)
        self._seen_down = False
        self._instruments = None

    # -- state ----------------------------------------------------------
    def is_partitioned(self, now: Optional[float] = None) -> bool:
        if self.fault_injector is None:
            return False
        return self.fault_injector.is_partitioned(
            self.link_id, self.env.now if now is None else now
        )

    def _latency_now(self, draw: float) -> float:
        factor = (
            self.fault_injector.latency_factor(self.link_id, self.env.now)
            if self.fault_injector is not None
            else 1.0
        )
        return self.latency * factor + self.jitter * draw

    def _loss_now(self) -> float:
        extra = (
            self.fault_injector.loss_rate(self.link_id, self.env.now)
            if self.fault_injector is not None
            else 0.0
        )
        return 1.0 - (1.0 - self.loss_rate) * (1.0 - extra)

    def _observe(self, down: bool) -> None:
        if down == self._seen_down:
            return
        self._seen_down = down
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant(
                "net_link_down" if down else "net_link_up",
                link=self.link_id,
            )

    # -- transfers ------------------------------------------------------
    def transfer(self, nbytes: int, trace_ctx=None) -> Generator:
        """Process: move one ``nbytes`` message across the link.

        Raises :class:`LinkPartitionedError` after ``partition_detect``
        seconds when the link is (or goes) down, and
        :class:`NetworkError` once ``max_retransmits`` retransmissions
        were lost.  Never hangs.

        ``trace_ctx`` (a :class:`~repro.obs.causal.RequestContext`)
        wraps the whole transfer — retransmissions and partition
        detection included — in one ``fabric_transfer`` span so the
        critical-path analyzer can attribute fabric time per request.
        """
        env = self.env
        self._seq += 1
        seq = self._seq
        attempts = 0
        fabric_span = (
            trace_ctx.begin(
                "fabric_transfer", link=self.link_id, bytes=nbytes
            )
            if trace_ctx is not None else None
        )
        try:
            result = yield from self._transfer_inner(
                nbytes, seq, fabric_span
            )
            return result
        finally:
            if fabric_span is not None:
                trace_ctx.end(fabric_span)

    def _transfer_inner(self, nbytes: int, seq: int,
                        fabric_span) -> Generator:
        env = self.env
        attempts = 0
        while True:
            if self.is_partitioned():
                self._observe(True)
                self.drops.add()
                self.partition_failures.add()
                self._publish()
                yield env.timeout(self.partition_detect)
                raise LinkPartitionedError(
                    f"link {self.link_id} partitioned "
                    f"({nbytes} B message dropped)",
                    link_id=self.link_id,
                    attempts=attempts + 1,
                )
            self._observe(False)
            attempts += 1
            draw = _hash_unit(seq, attempts, nbytes)
            yield from self.wire.transfer(
                nbytes, extra_latency=self._latency_now(draw)
            )
            if self.is_partitioned():
                # the partition opened mid-flight: the frame is gone
                continue
            loss = self._loss_now()
            if loss and _hash_unit(seq, attempts, 0x10C5) < loss:
                self.drops.add()
                if attempts > self.max_retransmits:
                    self._publish()
                    raise NetworkError(
                        f"link {self.link_id}: message lost "
                        f"{attempts} times (loss rate {loss:.3f})",
                        link_id=self.link_id,
                        attempts=attempts,
                    )
                self.retransmits.add()
                yield env.timeout(self.retransmit_timeout)
                continue
            self.transfers.add()
            self._publish()
            return nbytes

    def ping(self, nbytes: int = 64) -> Generator:
        """Process: one tiny round-trip message — the heal probe."""
        yield from self.transfer(nbytes)
        yield from self.transfer(nbytes)
        return True

    # -- stats ----------------------------------------------------------
    def throughput(self) -> float:
        return self.wire.throughput()

    def utilization(self) -> float:
        return self.wire.utilization()

    def reset_stats(self) -> None:
        self.wire.reset_stats()
        self.transfers.reset()
        self.retransmits.reset()
        self.drops.reset()
        self.partition_failures.reset()

    # -- live metrics ---------------------------------------------------
    def _publish(self) -> None:
        """Mirror link counters into the live metrics registry (pure
        arithmetic guarded on ``metrics.enabled``, like every hot-path
        push — a metrics-on run stays bit-identical)."""
        metrics = self.env.metrics
        if not metrics.enabled:
            return
        registry = metrics.registry
        if self._instruments is None or self._instruments[0] is not registry:
            specs = (
                ("cam_net_transfers_total", "counter",
                 "messages delivered per fabric link"),
                ("cam_net_bytes_total", "counter",
                 "payload bytes delivered per fabric link"),
                ("cam_net_retransmits_total", "counter",
                 "messages retransmitted after a loss"),
                ("cam_net_drops_total", "counter",
                 "frames dropped (loss + partition)"),
                ("cam_net_link_down", "gauge",
                 "1 while the link observes itself partitioned"),
            )
            children = []
            for name, kind, help_text in specs:
                family = registry.get(name)
                if family is None:
                    family = registry.register(
                        name, kind, help=help_text, labels=("link",)
                    )
                children.append(family.labels(self.link_id))
            self._instruments = (registry, *children)
        _, transfers, nbytes, retrans, drops, down = self._instruments
        transfers.set_total(self.transfers.total)
        nbytes.set_total(self.wire.bytes_moved.total)
        retrans.set_total(self.retransmits.total)
        drops.set_total(self.drops.total)
        down.set(1.0 if self._seen_down else 0.0)

    def publish(self) -> None:
        """Pull-refresh for the sampler (also updates the down gauge
        from the *current* injector state, not just the last observer)."""
        self._seen_down = self.is_partitioned()
        self._publish()

    def __repr__(self) -> str:
        return (
            f"<FabricLink {self.link_id} "
            f"{self.wire.bandwidth / 1e9:.1f}GB/s {self.latency * 1e6:.1f}us>"
        )
