"""SPDK reactors: polling CPU cores that own NVMe queue pairs.

A reactor is modelled as a serial CPU stage (capacity-1 resource): every
request charged to it pays ``per_request_cpu`` seconds of submission +
completion-poll work.  A reactor that owns more SSDs than its IOPS budget
covers becomes the bottleneck — the effect Fig. 12 measures (1 core drives
2 SSDs losslessly; 4 SSDs degrade to ~75 %).
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.config import SPDKConfig
from repro.errors import ConfigurationError, ReactorOfflineError
from repro.hw.cpu import CycleAccountant
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.sim.stats import Counter


class Reactor:
    """One polling core."""

    def __init__(
        self,
        env: Environment,
        reactor_id: int,
        config: SPDKConfig,
        cpu=None,
    ):
        self.env = env
        self.reactor_id = reactor_id
        self.config = config
        self._serial = Resource(env, capacity=1)
        self.requests = Counter(env)
        self.accountant = CycleAccountant()
        #: cumulative simulated seconds this core spent busy (charges,
        #: coalesced per-item CPU, stalls) — pure float accounting, so
        #: reading or windowing it never perturbs the event heap.  The
        #: sampler and :meth:`CamManager.reactor_busy_fractions` derive
        #: the paper's compute/IO-ratio signal from deltas of this.
        self.busy_seconds = 0.0
        #: set by :meth:`crash` — a crashed reactor refuses new work and
        #: has failed every queued charge with ReactorOfflineError
        self.crashed = False
        #: simulated time the reactor last finished a unit of work; a
        #: supervisor treats a busy reactor with stale progress as stalled
        self.last_progress = env.now
        self._core_grant = None
        if cpu is not None:
            # occupy a physical core for the reactor's lifetime
            self._core_grant = cpu.acquire_core()

    def _offline_error(self) -> ReactorOfflineError:
        return ReactorOfflineError(
            f"reactor {self.reactor_id} is offline",
            reactor_id=self.reactor_id,
        )

    def charge(
        self, seconds: Optional[float] = None, parent=None
    ) -> Generator:
        """Process: serialized CPU work on this reactor.

        Returns the ``submit`` span covering the busy time (or ``None``
        when tracing is disabled), so callers can attach request tags.
        The span excludes the wait for the core — per-reactor
        utilization sums span durations, so only busy time may count.

        Raises :class:`~repro.errors.ReactorOfflineError` if the reactor
        has crashed — either immediately, or from the ``yield`` when
        :meth:`crash` fails this charge's queued slot request.
        """
        if self.crashed:
            raise self._offline_error()
        cost = self.config.per_request_cpu if seconds is None else seconds
        span = None
        # Manual request lifecycle instead of ``with``: crash() may fail
        # our queued request, and the context manager's release on a
        # triggered-but-never-granted request would raise double-release.
        req = self._serial.request()
        granted = False
        try:
            yield req
            granted = True
            if self.crashed:
                raise self._offline_error()
            tracer = self.env.tracer
            if tracer.enabled:
                span = tracer.begin(
                    "submit", parent=parent, reactor=self.reactor_id
                )
            yield self.env.timeout(cost)
            self.busy_seconds += cost
            if span is not None:
                tracer.end(span)
            self.last_progress = self.env.now
        finally:
            if granted:
                self._serial.release(req)
            elif not req.triggered:
                req.cancel()
        self.requests.add()
        return span

    def stall(self, duration: float) -> Generator:
        """Process: hold the reactor's serial stage busy for ``duration``.

        Models a poller wedged on a slow syscall or preempted by the
        kernel: queued work waits (or is failed if :meth:`crash` fires
        mid-stall), and ``last_progress`` goes stale so a supervisor can
        notice.
        """
        req = self._serial.request()
        granted = False
        try:
            yield req
            granted = True
            tracer = self.env.tracer
            span = (
                tracer.begin("reactor_stall", reactor=self.reactor_id)
                if tracer.enabled
                else None
            )
            yield self.env.timeout(duration)
            # a wedged poller still occupies its core: stalls count as busy
            self.busy_seconds += duration
            if span is not None:
                tracer.end(span, duration=duration)
        finally:
            if granted:
                self._serial.release(req)
            elif not req.triggered:
                req.cancel()

    def crash(self) -> None:
        """Declare this reactor dead.

        New :meth:`charge` calls raise immediately; every queued slot
        request is failed with :class:`ReactorOfflineError` so waiting
        submitters can re-home their work on a surviving reactor.  The
        drain runs even if the ``crashed`` flag was already set —
        :meth:`SpdkDriver.fail_reactor` flags the reactor *before*
        re-homing its SSDs (so the remap skips it) and only then calls
        here to rescue the waiters.
        """
        first = not self.crashed
        self.crashed = True
        if first:
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.instant("reactor_crash", reactor=self.reactor_id)
        queued = list(self._serial._queue)
        self._serial._queue.clear()
        for req in queued:
            if not req.triggered:
                req.fail(self._offline_error())

    def revive(self) -> None:
        """Bring a crashed reactor back (operator replaced the thread)."""
        if not self.crashed:
            return
        self.crashed = False
        self.last_progress = self.env.now
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant("reactor_revive", reactor=self.reactor_id)

    def account_request(self, poll_iterations: float = 1.0) -> dict:
        """Record Fig. 13-style instruction counts for one request.

        Returns the charged ``instructions``/``cycles`` so the caller
        can tag the request's span with them (Fig. 13 via the trace).
        """
        submit_instructions = self.config.submit_instructions
        poll_instructions = (
            self.config.poll_instructions_per_iter * poll_iterations
        )
        self.accountant.charge(
            "submit", submit_instructions, self.config.work_ipc
        )
        self.accountant.charge(
            "poll", poll_instructions, self.config.poll_ipc
        )
        self.accountant.complete_request()
        return {
            "instructions": submit_instructions + poll_instructions,
            "cycles": (
                submit_instructions / self.config.work_ipc
                + poll_instructions / self.config.poll_ipc
            ),
            "poll_iterations": poll_iterations,
        }

    def account_batch(self, count: int, poll_iterations: float = 1.0) -> None:
        """Bulk form of :meth:`account_request` for coalesced submission.

        Charging is linear in the request count, so one call with ``count``
        requests leaves the accountant in exactly the state ``count``
        :meth:`account_request` calls would.
        """
        self.accountant.charge(
            "submit",
            count * self.config.submit_instructions,
            self.config.work_ipc,
        )
        self.accountant.charge(
            "poll",
            count * self.config.poll_instructions_per_iter * poll_iterations,
            self.config.poll_ipc,
        )
        self.accountant.complete_request(count)

    @property
    def iops_capacity(self) -> float:
        return 1.0 / self.config.per_request_cpu


class ReactorPool:
    """A set of reactors with an SSD -> reactor assignment.

    ``ssds_per_reactor`` > 1 reproduces the paper's "one CPU thread
    controls multiple NVMes" experiment; assignment is round-robin so load
    spreads evenly.
    """

    def __init__(
        self,
        env: Environment,
        num_ssds: int,
        num_reactors: int,
        config: SPDKConfig,
        cpu=None,
    ):
        if num_reactors < 1:
            raise ConfigurationError("need at least one reactor")
        if num_ssds < 1:
            raise ConfigurationError("need at least one SSD")
        self.env = env
        self.config = config
        self.reactors: List[Reactor] = [
            Reactor(env, index, config, cpu=cpu)
            for index in range(num_reactors)
        ]
        self._assignment = [
            index % num_reactors for index in range(num_ssds)
        ]
        #: active window set by the last remap (Fig. 12 dynamic cores)
        self._active = num_reactors

    def remap(self, active_count: Optional[int] = None) -> None:
        """Re-assign every SSD round-robin over the first ``active_count``
        reactors (the Fig. 12 dynamic core adjustment), skipping crashed
        ones.

        Reactors beyond ``active_count`` keep existing but receive no new
        work; in-flight requests on them drain normally.  With no crashed
        reactors the assignment is identical to the historical
        ``index % active_count`` round-robin.  Crashed reactors inside the
        active window are skipped; if the whole window is dead, every
        alive reactor (anywhere) is drafted, and an all-dead pool raises
        :class:`ReactorOfflineError`.

        ``remap()`` with no argument re-balances over the current window —
        the failover entry point after a crash or revive.
        """
        if active_count is None:
            active_count = self._active
        if not 1 <= active_count <= len(self.reactors):
            raise ConfigurationError(
                f"active reactor count {active_count} outside "
                f"[1, {len(self.reactors)}]"
            )
        self._active = active_count
        candidates = [
            reactor.reactor_id
            for reactor in self.reactors[:active_count]
            if not reactor.crashed
        ]
        if not candidates:
            candidates = [
                reactor.reactor_id
                for reactor in self.reactors
                if not reactor.crashed
            ]
        if not candidates:
            raise ReactorOfflineError(
                "every reactor in the pool is offline"
            )
        self._assignment = [
            candidates[index % len(candidates)]
            for index in range(len(self._assignment))
        ]

    @property
    def active_count(self) -> int:
        return self._active

    def alive_reactors(self) -> List[Reactor]:
        return [r for r in self.reactors if not r.crashed]

    def reactor_for(self, ssd_index: int) -> Reactor:
        if not 0 <= ssd_index < len(self._assignment):
            raise ConfigurationError(f"no SSD {ssd_index} in reactor map")
        return self.reactors[self._assignment[ssd_index]]

    @property
    def num_reactors(self) -> int:
        return len(self.reactors)

    def ssds_on_reactor(self, reactor_id: int) -> int:
        return sum(1 for r in self._assignment if r == reactor_id)

    def total_requests(self) -> float:
        return sum(reactor.requests.total for reactor in self.reactors)


class ReactorSupervisor:
    """Passive stall/crash detector driving failover for a reactor pool.

    Every ``check_interval`` the supervisor scans the pool: a reactor
    that is busy (slot held or waiters queued) but has made no progress
    for longer than ``stall_threshold`` is treated as stalled; one whose
    ``crashed`` flag is already set (an injected hard crash) is treated
    as dead.  Either way ``on_failover(reactor_id)`` runs once — the
    driver's failover re-homes the reactor's SSDs and rescues its
    waiters.  Detection is purely observational: no probe work is
    charged to any reactor, so a fault-free run is undisturbed apart
    from the supervisor's own timer events.

    The watch loop keeps a run-to-exhaustion simulation alive; call
    :meth:`stop` (or run with ``until=``) when the workload is done.
    """

    def __init__(
        self,
        pool: ReactorPool,
        on_failover: Callable[[int], None],
        check_interval: float = 1e-3,
        stall_threshold: float = 5e-3,
    ):
        self.env = pool.env
        self.pool = pool
        self.on_failover = on_failover
        self.check_interval = check_interval
        self.stall_threshold = stall_threshold
        self.stalls_detected = Counter(self.env)
        self.failovers = Counter(self.env)
        self._handled: set = set()
        self._stopped = False
        self._proc = self.env.process(self._watch())

    def stop(self) -> None:
        """Stop watching after the in-flight check interval expires."""
        self._stopped = True

    def _watch(self) -> Generator:
        while not self._stopped:
            yield self.env.timeout(self.check_interval)
            if self._stopped:
                return
            for reactor in self.pool.reactors:
                rid = reactor.reactor_id
                if rid in self._handled:
                    if not reactor.crashed:
                        # revived (and remapped back in) — watch it again
                        self._handled.discard(rid)
                    continue
                if reactor.crashed:
                    self._handled.add(rid)
                    self.failovers.add()
                    self.on_failover(rid)
                    continue
                serial = reactor._serial
                busy = serial.count or serial.queued
                if not busy:
                    continue
                stale = self.env.now - reactor.last_progress
                if stale > self.stall_threshold:
                    self.stalls_detected.add()
                    tracer = self.env.tracer
                    if tracer.enabled:
                        tracer.instant(
                            "reactor_stall_detected",
                            reactor=rid,
                            stale_for=stale,
                        )
                    self._handled.add(rid)
                    self.failovers.add()
                    self.on_failover(rid)
