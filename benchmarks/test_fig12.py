"""Benchmark: regenerate Fig. 12 (one thread driving k SSDs)."""


def test_fig12_threads_per_ssd(check):
    def verify(result):
        table = result.table("random read, 4 KiB (GB/s)")
        frac = dict(zip(table.column("ssds_per_thread"),
                        table.column("fraction_of_full")))
        assert 0.6 < frac[4] < 0.85

    check("fig12", verify)
