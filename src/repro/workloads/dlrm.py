"""DLRM training with SSD-resident embedding tables.

Paper Section II: "the DLRM training system TorchRec spends 75% of each
iteration time on the embedding access, which mainly reads the embedding
table from SSD with only the ~64% SSD bandwidth utilization".

Model: each iteration gathers a batch of embedding rows (one 4 KiB page
per row group, zipf-skewed row popularity), runs the dense interaction
forward/backward on the GPU, then writes updated embeddings back.

* the **cpu-managed baseline** (libaio bounce, serial phases) reproduces
  the ~75 % embedding-access share and the sub-device utilization;
* **CAM** overlaps the next batch's gather with the current batch's
  dense compute and write-back.

Functional: embedding rows are real float32 vectors staged on the
simulated SSDs; a gathered batch is verified against the staged table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.backends.base import StorageBackend, make_backend
from repro.errors import ConfigurationError
from repro.hw.platform import Platform
from repro.units import KiB
from repro.workloads.pipelines import run_two_stage_pipeline
from repro.workloads.vdisk import VirtualDisk

_PAGE = 4 * KiB

#: fraction of fp32 peak the dense interaction kernels sustain
_DENSE_EFFICIENCY = 0.25


@dataclass
class DlrmResult:
    """Outcome of one training run."""

    iterations: int
    total_time: float
    embedding_time: float
    dense_time: float
    rows_fetched: int
    verified: bool

    @property
    def embedding_fraction(self) -> float:
        """Share of summed phase time spent on embedding access."""
        total = self.embedding_time + self.dense_time
        return self.embedding_time / total if total else 0.0


class DlrmTrainer:
    """Embedding-on-SSD recommendation-model training."""

    def __init__(
        self,
        platform: Platform,
        backend: StorageBackend,
        num_rows: int = 1 << 14,
        embedding_dim: int = 128,
        lookups_per_sample: int = 26,  # Criteo-style sparse features
        batch_size: int = 512,
        #: dense MLP + interaction + optimizer FLOPs per sample;
        #: calibrated so the CPU-managed baseline spends ~75 % of each
        #: iteration on embedding access (the paper's TorchRec number)
        mlp_flops_per_sample: float = 3.0e7,
        overlap: Optional[bool] = None,
        seed: int = 0,
    ):
        if embedding_dim * 4 > _PAGE:
            raise ConfigurationError(
                f"embedding_dim {embedding_dim} exceeds one {_PAGE}B page"
            )
        if num_rows < batch_size:
            raise ConfigurationError("need at least batch_size rows")
        self.platform = platform
        self.backend = backend
        self.num_rows = num_rows
        self.embedding_dim = embedding_dim
        self.lookups_per_sample = lookups_per_sample
        self.batch_size = batch_size
        self.mlp_flops_per_sample = mlp_flops_per_sample
        self.overlap = (
            backend.name == "cam" if overlap is None else overlap
        )
        self.rng = np.random.default_rng(seed)
        platform.stripe_blocks = _PAGE // platform.config.ssd.block_size
        self.vdisk = VirtualDisk(platform)
        self._table: Optional[np.ndarray] = None

    # -- staging --------------------------------------------------------
    def stage_table(self) -> None:
        """Write the embedding table to the SSDs, one row per page."""
        table = self.rng.standard_normal(
            (self.num_rows, self.embedding_dim)
        ).astype(np.float32)
        self._table = table
        page = np.zeros(_PAGE, dtype=np.uint8)
        for row in range(self.num_rows):
            raw = table[row].view(np.uint8)
            page[: raw.nbytes] = raw
            page[raw.nbytes :] = 0
            self.vdisk.write_direct(row * _PAGE, page)

    def _sample_rows(self) -> np.ndarray:
        """Zipf-skewed row popularity, as in production DLRM traffic."""
        raw = self.rng.zipf(1.3, size=self.batch_size
                            * self.lookups_per_sample)
        return np.unique((raw - 1) % self.num_rows)

    # -- training ---------------------------------------------------------
    def run(self, iterations: int = 8, verify: bool = True) -> DlrmResult:
        if self._table is None:
            raise ConfigurationError("stage_table() first")
        env = self.platform.env
        gpu = self.platform.gpu
        batches = [self._sample_rows() for _ in range(iterations)]
        rows_fetched = 0
        verified = True
        dense_time_per_batch = (
            3.0 * self.mlp_flops_per_sample * self.batch_size
            / (gpu.config.fp32_flops * _DENSE_EFFICIENCY)
        )

        def embedding_stage(index: int) -> Generator:
            nonlocal rows_fetched, verified
            rows = batches[index]
            rows_fetched += len(rows)
            # gather: one 4 KiB page per unique row; then a write-back of
            # the updated rows (same volume)
            yield from self.backend.bulk_io(
                len(rows) * _PAGE, _PAGE, is_write=False
            )
            if verify and index == 0:
                got = self.vdisk.read_direct(int(rows[0]) * _PAGE, _PAGE)
                expected = self._table[int(rows[0])].view(np.uint8)
                verified = bool(
                    np.array_equal(got[: expected.nbytes], expected)
                )
            yield from self.backend.bulk_io(
                len(rows) * _PAGE, _PAGE, is_write=True
            )

        def dense_stage(index: int) -> Generator:
            yield env.timeout(dense_time_per_batch)

        start = env.now
        report = run_two_stage_pipeline(
            env, iterations, embedding_stage, dense_stage,
            overlap=self.overlap,
        )
        return DlrmResult(
            iterations=iterations,
            total_time=env.now - start,
            embedding_time=report.io_time,
            dense_time=report.compute_time,
            rows_fetched=rows_fetched,
            verified=verified,
        )


def dlrm_with_backend(
    backend_name: str,
    iterations: int = 8,
    num_ssds: int = 12,
    num_rows: int = 1 << 13,
    batch_size: int = 512,
    seed: int = 31,
    **kwargs,
) -> DlrmResult:
    """Convenience: stage a table and train for a few iterations."""
    from repro.config import PlatformConfig

    platform = Platform(PlatformConfig(num_ssds=num_ssds))
    backend_kwargs = {}
    if backend_name in ("posix", "libaio"):
        backend_kwargs["to_gpu"] = True
    backend = make_backend(backend_name, platform, **backend_kwargs)
    trainer = DlrmTrainer(
        platform, backend, num_rows=num_rows, batch_size=batch_size,
        seed=seed, **kwargs,
    )
    trainer.stage_table()
    return trainer.run(iterations=iterations)
