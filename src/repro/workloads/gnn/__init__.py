"""Out-of-core GNN training (paper Sections II, IV-C; Figs. 1, 9).

The paper's headline application: node-classification training where the
graph structure lives in CPU memory but node features live on the SSD
array.  Per mini-batch:

1. **sample** — 2-hop random neighbor sampling (fan-outs 25, 10);
2. **extract** — gather the sampled nodes' feature vectors from the SSDs
   (page-grained reads);
3. **train** — forward + backward through the GNN model.

GIDS (the BaM-based baseline) runs the three phases serially, with the
extraction occupying the GPU's SMs; CAM overlaps extraction with
sampling + training.
"""

from repro.workloads.gnn.datasets import (
    DATASETS,
    DatasetSpec,
    igb_full,
    paper100m,
)
from repro.workloads.gnn.graph import CSRGraph, random_power_law_graph
from repro.workloads.gnn.models import MODELS, GNNModelSpec, gat, gcn, graphsage
from repro.workloads.gnn.sampling import BatchStats, NeighborSampler
from repro.workloads.gnn.training import EpochTimes, run_gnn_epoch

__all__ = [
    "BatchStats",
    "CSRGraph",
    "DATASETS",
    "DatasetSpec",
    "EpochTimes",
    "GNNModelSpec",
    "MODELS",
    "NeighborSampler",
    "gat",
    "gcn",
    "graphsage",
    "igb_full",
    "paper100m",
    "random_power_law_graph",
    "run_gnn_epoch",
]
