"""Tests for the GNN workload: graph, sampling, models, training."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.gnn import (
    CSRGraph,
    NeighborSampler,
    gat,
    gcn,
    graphsage,
    igb_full,
    paper100m,
    random_power_law_graph,
)
from repro.workloads.gnn.training import compare_epoch, run_gnn_epoch
from repro.config import GPUConfig


# --- graph -----------------------------------------------------------------

def test_csr_from_edges():
    graph = CSRGraph.from_edges(
        4, src=np.array([0, 0, 1, 3]), dst=np.array([1, 2, 3, 0])
    )
    assert graph.num_nodes == 4
    assert graph.num_edges == 4
    assert sorted(graph.neighbors(0).tolist()) == [1, 2]
    assert graph.degree(2) == 0
    assert graph.degree().tolist() == [2, 1, 0, 1]


def test_csr_validation():
    with pytest.raises(ConfigurationError):
        CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))  # decreasing
    with pytest.raises(ConfigurationError):
        CSRGraph(np.array([0, 2]), np.array([0, 5]))  # endpoint range
    graph = CSRGraph.from_edges(2, np.array([0]), np.array([1]))
    with pytest.raises(ConfigurationError):
        graph.neighbors(5)


def test_power_law_graph_shape():
    graph = random_power_law_graph(5000, avg_degree=12.0, seed=4)
    assert graph.num_nodes == 5000
    mean_degree = graph.num_edges / graph.num_nodes
    assert mean_degree == pytest.approx(12.0, rel=0.2)
    degrees = graph.degree()
    # power-law-ish: the top node far exceeds the mean
    assert degrees.max() > 4 * mean_degree


def test_power_law_graph_deterministic():
    a = random_power_law_graph(1000, 8.0, seed=1)
    b = random_power_law_graph(1000, 8.0, seed=1)
    assert np.array_equal(a.indices, b.indices)


def test_power_law_graph_validation():
    with pytest.raises(ConfigurationError):
        random_power_law_graph(1, 5.0)
    with pytest.raises(ConfigurationError):
        random_power_law_graph(100, 0.0)


# --- datasets ---------------------------------------------------------------

def test_dataset_specs_match_table_iv():
    p = paper100m()
    assert p.num_nodes == 111_059_956
    assert p.num_edges == 1_615_685_872
    assert p.feature_dim == 128
    i = igb_full()
    assert i.num_nodes == 269_364_174
    assert i.feature_dim == 1024
    # feature volumes: ~56 GB and ~1.1 TB
    assert p.feature_volume_bytes == pytest.approx(56e9, rel=0.03)
    assert i.feature_volume_bytes == pytest.approx(1.1e12, rel=0.03)


def test_dataset_scaling_preserves_degree_and_features():
    spec = paper100m()
    scaled = spec.scale(0.001)
    assert scaled.feature_dim == spec.feature_dim
    assert scaled.avg_degree == pytest.approx(spec.avg_degree, rel=0.01)
    assert scaled.num_nodes < spec.num_nodes


def test_dataset_scale_validation():
    with pytest.raises(ConfigurationError):
        paper100m().scale(0)
    with pytest.raises(ConfigurationError):
        paper100m().scale(1.5)


# --- sampling ----------------------------------------------------------------

def _sampler(fanouts=(25, 10)):
    graph = random_power_law_graph(20_000, 14.0, seed=2)
    return graph, NeighborSampler(graph, fanouts, seed=2)


def test_sampling_respects_fanouts():
    graph, sampler = _sampler()
    stats = sampler.sample(np.arange(100))
    assert len(stats.layer_edges) == 2
    assert stats.layer_edges[0] <= 100 * 25
    assert stats.layer_edges[1] <= stats.layer_nodes[0] * 10


def test_sampled_nodes_are_valid_and_unique():
    graph, sampler = _sampler()
    stats = sampler.sample(np.arange(50))
    unique = stats.unique_nodes
    assert len(np.unique(unique)) == len(unique)
    assert unique.min() >= 0 and unique.max() < graph.num_nodes
    # seeds always included
    assert np.all(np.isin(np.arange(50), unique))


def test_sampling_dedup_reduces_unique_count():
    graph, sampler = _sampler()
    stats = sampler.sample(np.arange(200))
    touched = len(stats.seed_nodes) + stats.total_edges
    assert stats.num_unique < touched


def test_sampling_validation():
    graph, sampler = _sampler()
    with pytest.raises(ConfigurationError):
        sampler.sample(np.array([]))
    with pytest.raises(ConfigurationError):
        sampler.sample(np.array([graph.num_nodes]))
    with pytest.raises(ConfigurationError):
        NeighborSampler(graph, fanouts=())


def test_epoch_batches_cover_all_train_nodes():
    graph, sampler = _sampler()
    train = np.arange(1000)
    batches = list(sampler.epoch_batches(train, batch_size=256))
    assert sum(len(b) for b in batches) == 1000
    assert np.array_equal(
        np.sort(np.concatenate(batches)), train
    )


# --- model cost models -----------------------------------------------------

def test_gat_costs_most_gcn_least():
    gpu = GPUConfig()
    nodes, edges = [2000, 20000], [2000, 20000]
    times = {
        spec.name: spec.train_time(gpu, nodes, edges, in_dim=128)
        for spec in (gcn(), graphsage(), gat())
    }
    assert times["GCN"] < times["GRAPHSAGE"] < times["GAT"]


def test_flops_scale_with_input_dim():
    spec = gcn()
    small = spec.flops([1000], [1000], in_dim=128)
    large = spec.flops([1000], [1000], in_dim=1024)
    assert large > 5 * small


def test_train_time_sms_fraction():
    spec = gcn()
    gpu = GPUConfig()
    full = spec.train_time(gpu, [1000], [1000], 128, sms_fraction=1.0)
    half = spec.train_time(gpu, [1000], [1000], 128, sms_fraction=0.5)
    assert half > full
    with pytest.raises(ConfigurationError):
        spec.train_time(gpu, [1000], [1000], 128, sms_fraction=0)


def test_flops_layer_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        gcn().flops([10], [10, 20], 128)


# --- training loops --------------------------------------------------------

def test_cam_beats_gids_within_paper_band():
    spec = paper100m().scale(0.004)
    results = compare_epoch(
        spec, gcn(), systems=("gids", "cam"), batch_size=32, max_batches=6
    )
    speedup = results["gids"].total_time / results["cam"].total_time
    assert 1.1 < speedup < 1.9  # paper: up to 1.84x


def test_gids_phase_shares_in_fig1_band():
    spec = paper100m().scale(0.004)
    times = run_gnn_epoch(spec, gcn(), "gids", batch_size=32, max_batches=6)
    shares = times.fractions()
    assert 0.40 <= shares["extract"] <= 0.70
    assert shares["sample"] > 0.05
    assert sum(shares.values()) == pytest.approx(1.0)


def test_gat_gains_most_on_paper100m():
    spec = paper100m().scale(0.004)
    speedups = {}
    for make_model in (gcn, gat):
        results = compare_epoch(
            spec, make_model(), systems=("gids", "cam"),
            batch_size=32, max_batches=6,
        )
        speedups[make_model().name] = (
            results["gids"].total_time / results["cam"].total_time
        )
    assert speedups["GAT"] > speedups["GCN"]


def test_unknown_system_rejected():
    with pytest.raises(ConfigurationError):
        run_gnn_epoch(paper100m().scale(0.004), gcn(), system="cuda")


def test_epoch_times_accounting():
    spec = paper100m().scale(0.004)
    times = run_gnn_epoch(spec, gcn(), "gids", batch_size=32, max_batches=4)
    assert times.batches == 4
    assert times.bytes_extracted > 0
    assert times.extraction_bandwidth > 0
    # serial system: phases sum to the total
    phase_sum = times.sample_time + times.extract_time + times.train_time
    assert times.total_time == pytest.approx(phase_sum, rel=0.01)
