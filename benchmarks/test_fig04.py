"""Benchmark: regenerate Fig. 4 (BaM SM utilization vs SSD count)."""


def test_fig04_bam_sm_util(check):
    def verify(result):
        util = result.tables[0].column("sm_utilization_%")
        assert util == sorted(util) and util[-1] == 100.0

    check("fig04", verify)
