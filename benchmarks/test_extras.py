"""Benchmarks: ablation studies and the ANNS motivation number.

These are the design-choice ablations DESIGN.md calls out: overlap,
direct data path, and dynamic core adjustment, plus the Section II ANNS
study and the file-fragmentation sensitivity of the GDS baseline.
"""


def test_anns_motivation(check):
    def verify(result):
        fractions = dict(
            zip(result.tables[0].column("system"),
                result.tables[0].column("memcpy_fraction"))
        )
        assert fractions["spdk"] > 0.6 and fractions["cam"] == 0.0

    check("anns", verify)


def test_ablation_overlap(check):
    def verify(result):
        assert all(s > 1.0 for s in result.tables[0].column("slowdown"))

    check("ablation_overlap", verify)


def test_ablation_datapath(check):
    check("ablation_datapath")


def test_ablation_autotune(check):
    def verify(result):
        cores = result.tables[0].column("final_cores")
        assert min(cores) == 3 and max(cores) == 6

    check("ablation_autotune", verify)


def test_fragmentation(check):
    def verify(result):
        rates = result.tables[0].column("gds_GB/s")
        assert rates[-1] < rates[0]

    check("fragmentation", verify)


def test_dlrm_motivation(check):
    def verify(result):
        assert all(result.tables[0].column("verified"))

    check("dlrm", verify)


def test_llm_motivation(check):
    def verify(result):
        assert all(result.tables[0].column("verified"))

    check("llm", verify)


def test_latency_under_load(check):
    check("latency")


def test_host_cache(check):
    check("host_cache")


def test_paper_scale_gnn(check):
    def verify(result):
        assert all(s > 1.2 for s in result.tables[0].column("speedup"))

    check("paper_scale_gnn", verify)


def test_ssd_characterization(check):
    check("ssd_character")
