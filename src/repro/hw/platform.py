"""Testbed assembly: builds the Table III platform from a
:class:`~repro.config.PlatformConfig`.

A :class:`Platform` owns one simulation environment and every device on it:
the GPU, the CPU core pool, DRAM, the PCIe fabric, and ``num_ssds`` SSDs.
Control-plane implementations and workloads all operate on a Platform, so
an experiment that sweeps SSD counts just builds one Platform per point.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import DEFAULT_PLATFORM, PlatformConfig
from repro.errors import ConfigurationError
from repro.hw.cpu import CPU
from repro.hw.dram import DRAM
from repro.hw.gpu import GPU
from repro.hw.pcie import PCIeFabric
from repro.hw.ssd import SSD
from repro.sim.core import Environment


class Platform:
    """One simulated server: GPU + CPU + DRAM + PCIe + N SSDs."""

    def __init__(
        self,
        config: Optional[PlatformConfig] = None,
        env: Optional[Environment] = None,
        functional: bool = True,
        gpu_arena_bytes: int = 256 * 1024 * 1024,
        fault_injector=None,
    ):
        """
        Parameters
        ----------
        functional:
            When True the SSDs keep real bytes (needed by sort/GEMM/GNN
            examples); timing-only experiments pass False to avoid the
            memory cost.
        gpu_arena_bytes:
            Size of the functional GPU memory arena (see
            :class:`~repro.hw.gpu.GPUMemory`).
        """
        self.config = config or DEFAULT_PLATFORM
        self.env = env or Environment()
        #: storage-side fabric: SSD complex <-> host / P2P to the GPU.
        self.pcie = PCIeFabric(self.env, self.config.pcie)
        #: GPU-side link used by the copy engine (cudaMemcpy).  Bounce-
        #: buffered data paths cross *both* fabrics (SSD->host->GPU), while
        #: the direct P2P path (CAM/BaM/GDS) crosses only the storage one.
        self.gpu_pcie = PCIeFabric(self.env, self.config.pcie)
        self.dram = DRAM(self.env, self.config.dram)
        self.cpu = CPU(self.env, self.config.cpu)
        self.gpu = GPU(
            self.env,
            self.config.gpu,
            pcie=self.gpu_pcie.link,
            arena_bytes=gpu_arena_bytes,
        )
        self.fault_injector = fault_injector
        self.ssds: List[SSD] = [
            SSD(
                self.env,
                self.config.ssd,
                pcie=self.pcie.link,
                ssd_id=index,
                functional=functional,
                fault_injector=fault_injector,
            )
            for index in range(self.config.num_ssds)
        ]
        #: RAID0 stripe unit in blocks (8 x 512 B = 4 KiB default).
        #: Workloads that issue uniform large requests set this to their
        #: access granularity so each request maps to exactly one SSD.
        self.stripe_blocks = 8

    @property
    def num_ssds(self) -> int:
        return len(self.ssds)

    def ssd(self, index: int) -> SSD:
        if not 0 <= index < len(self.ssds):
            raise ConfigurationError(
                f"SSD index {index} out of range (have {len(self.ssds)})"
            )
        return self.ssds[index]

    def ssd_for_lba(
        self, global_lba: int, stripe_blocks: Optional[int] = None
    ) -> tuple:
        """RAID0-style striping: map a global LBA to (ssd, local LBA).

        ``stripe_blocks`` is the stripe unit in blocks; defaults to the
        platform's :attr:`stripe_blocks`.
        """
        if global_lba < 0:
            raise ConfigurationError(f"negative LBA {global_lba}")
        if stripe_blocks is None:
            stripe_blocks = self.stripe_blocks
        stripe, offset = divmod(global_lba, stripe_blocks)
        ssd_index = stripe % self.num_ssds
        local_stripe = stripe // self.num_ssds
        return self.ssds[ssd_index], local_stripe * stripe_blocks + offset

    def reset_stats(self) -> None:
        """Restart all throughput/utilization observation windows."""
        self.pcie.reset_stats()
        self.gpu_pcie.reset_stats()
        self.dram.reset_stats()
        for ssd in self.ssds:
            ssd.reset_stats()

    def aggregate_read_throughput(self) -> float:
        return sum(ssd.read_throughput() for ssd in self.ssds)

    def aggregate_write_throughput(self) -> float:
        return sum(ssd.write_throughput() for ssd in self.ssds)

    def __repr__(self) -> str:
        return (
            f"<Platform {self.config.gpu.name}, {self.num_ssds}x SSD, "
            f"{self.config.cpu.cores} cores>"
        )
