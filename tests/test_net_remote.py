"""Remote flash backend: replication, hedging, failover, deadlines.

Every test drives the full functional stack (`build_disagg` with
``tiered=False``): real node platforms behind real fabric links, so the
data-path assertions check actual bytes, not just counters.
"""

import pytest

from repro.config import PlatformConfig
from repro.errors import (
    ConfigurationError,
    NetworkError,
    RemoteTimeoutError,
    RemoteUnavailableError,
)
from repro.hw.platform import Platform
from repro.net import NetworkFaultInjector, RemoteFlashBackend, build_disagg


def _remote(num_nodes=2, functional=True, **kwargs):
    platform = Platform(PlatformConfig(num_ssds=1), functional=functional)
    injector = NetworkFaultInjector()
    backend = build_disagg(
        platform,
        num_nodes=num_nodes,
        tiered=False,
        functional=functional,
        fault_injector=injector,
        **kwargs,
    )
    return platform, injector, backend


def _run(platform, gen):
    env = platform.env
    return env.run(env.process(gen))


def _payload(fill, nbytes=4096):
    return bytes([fill % 256]) * nbytes


def test_write_then_read_round_trips_the_fabric():
    platform, _, backend = _remote()
    data = _payload(7)

    def proc():
        yield from backend.io(0, 4096, is_write=True, payload=data)
        cqe = yield from backend.io(0, 4096)
        return cqe

    cqe = _run(platform, proc())
    assert bytes(cqe.value) == data
    assert backend.remote_writes.total == 1
    assert backend.remote_reads.total == 1


def test_writes_replicate_to_every_node():
    platform, _, backend = _remote(num_nodes=3)
    data = _payload(9)

    def proc():
        yield from backend.io(8, 4096, is_write=True, payload=data)
        copies = []
        for node in backend.nodes:
            cqe = yield from node.backend.io(8, 4096)
            copies.append(bytes(cqe.value))
        return copies

    copies = _run(platform, proc())
    assert copies == [data] * 3


def test_read_fails_over_a_partitioned_primary():
    platform, injector, backend = _remote()
    data = _payload(3)

    def proc():
        yield from backend.io(0, 4096, is_write=True, payload=data)
        injector.set_partitioned("node0")
        injector.set_partitioned("node1")
        # rotate the primary back to node0 so the failover leg is real
        injector.set_partitioned("node1", False)
        cqe = yield from backend.io(0, 4096)
        return cqe

    cqe = _run(platform, proc())
    assert bytes(cqe.value) == data
    # node0 accumulated a breaker strike from the failed leg
    assert backend.health.device(0).total_failures >= 1


def test_all_links_partitioned_is_a_typed_error_not_a_hang():
    platform, injector, backend = _remote()
    injector.set_partitioned("node0")
    injector.set_partitioned("node1")

    def proc():
        with pytest.raises(NetworkError):
            yield from backend.io(0, 4096)

    _run(platform, proc())
    # the whole attempt burned link detection delays, not the deadline
    assert platform.env.now < backend.deadline


def test_slow_primary_gets_hedged_and_the_hedge_wins():
    platform, injector, backend = _remote(
        deadline=50e-3, hedge_after=100e-6
    )
    data = _payload(5)

    def proc():
        yield from backend.io(0, 4096, is_write=True, payload=data)
        # node0 becomes 200x slower but not dead: the primary leg is
        # slow, the hedge against node1 answers first
        injector.brownout("node0", 200.0, start=platform.env.now)
        reads = []
        for _ in range(2):  # round-robin: one of these primaries is node0
            cqe = yield from backend.io(0, 4096)
            reads.append(bytes(cqe.value))
        return reads

    reads = _run(platform, proc())
    assert reads == [data, data]
    assert backend.hedged_reads.total >= 1
    assert backend.hedge_wins.total >= 1


def test_deadline_surfaces_as_remote_timeout():
    platform, injector, backend = _remote(
        functional=False, deadline=1e-3, hedge_after=200e-6
    )
    # both nodes are browned out far past the deadline: no leg can
    # answer in time, and the watchdog converts the stall to a typed
    # timeout instead of letting the caller hang
    injector.brownout("node0", 1e6)
    injector.brownout("node1", 1e6)

    def proc():
        with pytest.raises(RemoteTimeoutError) as excinfo:
            yield from backend.io(0, 4096)
        return excinfo.value

    error = _run(platform, proc())
    assert error.attempts >= 1
    assert backend.remote_timeouts.total == 1
    # the caller waited the deadline plus scheduling slack, not forever
    assert platform.env.now < 2 * backend.deadline


def test_write_acks_all_fails_when_a_replica_is_down():
    platform, injector, backend = _remote(functional=False)
    injector.set_partitioned("node1")

    def proc():
        with pytest.raises(NetworkError):
            yield from backend.io(0, 4096, is_write=True,
                                  payload=_payload(1))

    _run(platform, proc())
    assert backend.degraded_writes.total == 1
    assert backend.remote_writes.total == 0


def test_write_acks_one_survives_a_down_replica():
    platform, injector, backend = _remote(
        functional=False, write_acks="one"
    )
    injector.set_partitioned("node1")

    def proc():
        cqe = yield from backend.io(0, 4096, is_write=True,
                                    payload=_payload(1))
        return cqe

    _run(platform, proc())
    assert backend.remote_writes.total == 1
    assert backend.degraded_writes.total == 1


def test_breaker_open_everywhere_rejects_without_network_traffic():
    platform, _, backend = _remote(functional=False)
    backend.health.mark_offline(0)
    backend.health.mark_offline(1)

    def proc():
        with pytest.raises(RemoteUnavailableError):
            yield from backend.io(0, 4096)

    _run(platform, proc())
    assert backend.breaker_rejections.total == 1
    assert all(node.link.transfers.total == 0 for node in backend.nodes)


def test_reads_rotate_across_replicas():
    platform, _, backend = _remote(functional=False)

    def proc():
        for _ in range(4):
            yield from backend.io(0, 4096)

    _run(platform, proc())
    served = [node.link.transfers.total for node in backend.nodes]
    assert all(count > 0 for count in served)


def test_remote_validation():
    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    with pytest.raises(ConfigurationError):
        RemoteFlashBackend(platform, [])
    platform2, _, backend = _remote(functional=False)
    with pytest.raises(ConfigurationError):
        RemoteFlashBackend(platform2, backend.nodes, deadline=1e-3,
                           hedge_after=1e-3)
    with pytest.raises(ConfigurationError):
        RemoteFlashBackend(platform2, backend.nodes, write_acks="two")
