"""Disaggregated flash tier: local vs remote vs tiered.

The CAM paper's evaluation is strictly local NVMe.  This study asks
what its batching storage plane costs when the capacity tier moves to
the other side of a fabric (the EC2/Azure disaggregated-flash shape
related work targets):

* **local-only** — the plain CAM backend on direct-attached SSDs; the
  goodput ceiling.
* **remote-direct** — every request crosses the fabric to 2 replica
  nodes (:class:`~repro.net.remote.RemoteFlashBackend`: deadline
  timeouts + hedged reads + per-node breakers).
* **tiered** — local NVMe runs as a write-back cache over the remote
  capacity (:class:`~repro.net.tiered.TieredBackend`); hot pages are
  served at local speed, the dirty log batches write-backs.

The second panel replays the same tiered stack under fabric faults
(partition / brownout) and reports availability: a partition must
never hang a request — every op completes, fails with a typed
``NetworkError``, or is served from the degraded local tier.
"""

from __future__ import annotations

from repro.config import PlatformConfig
from repro.experiments.report import ExperimentResult, Table
from repro.hw.platform import Platform
from repro.units import KiB, MiB, to_gb_per_s

#: cache-friendly workload shape shared with ``run_bench``'s
#: ``disagg_sweep`` gate (tiered must keep >= 80 % of local goodput)
WORKLOAD = {
    "granularity": 4 * KiB,
    "skew": 1.5,
    "spread_blocks": 1 << 14,  # 2048 distinct 4 KiB pages (8 MiB hot set)
    "write_fraction": 0.2,
    "seed": 23,
}


def disagg_goodput(quick: bool = True) -> dict:
    """Goodput of the three configurations on the cache-friendly
    workload; returns ``{config: {"gb_per_s", "hit_rate", "p99_us"}}``.

    Shared by :func:`run_disagg` and the ``disagg_sweep`` bench gate so
    both report the same numbers.
    """
    from repro.backends import make_backend
    from repro.net import build_disagg
    from repro.workloads.trace import TraceReplayer, make_zipfian_trace

    requests = 1600 if quick else 8000
    out = {}
    for config in ("local-only", "remote-direct", "tiered"):
        platform = Platform(PlatformConfig(num_ssds=2), functional=False)
        if config == "local-only":
            backend = make_backend("cam", platform)
        else:
            backend = build_disagg(
                platform,
                num_nodes=2,
                tiered=(config == "tiered"),
                functional=False,
                capacity_bytes=16 * MiB,
                flush_watermark=64,
                deadline=10e-3,
                hedge_after=1e-3,
            )
        def trace_for(seed):
            return make_zipfian_trace(
                requests,
                granularity=WORKLOAD["granularity"],
                target_iops=10_000_000,
                skew=WORKLOAD["skew"],
                spread_blocks=WORKLOAD["spread_blocks"],
                write_fraction=WORKLOAD["write_fraction"],
                seed=seed,
            )

        replayer = TraceReplayer(backend)
        # warm pass populates the tier; the measured pass is steady
        # state (every config replays both, so elapsed time compares
        # identical offered work)
        replayer.replay(trace_for(WORKLOAD["seed"]), open_loop=False,
                        concurrency=32)
        if config == "tiered":
            backend.hits.reset()
            backend.misses.reset()
        report = replayer.replay(
            trace_for(WORKLOAD["seed"] + 1), open_loop=False,
            concurrency=32,
        )
        out[config] = {
            "gb_per_s": to_gb_per_s(report.achieved_bytes_per_s),
            "hit_rate": (
                backend.hit_rate() if config == "tiered" else 0.0
            ),
            "p99_us": report.latency_percentile(99) * 1e6,
        }
    return out


def run_disagg(quick: bool = True) -> ExperimentResult:
    from repro.experiments.extras import _chaos_disagg

    result = ExperimentResult(
        exp_id="disagg",
        title="Disaggregated flash tier: goodput and partition tolerance",
        paper_expectation=(
            "not in the paper (local NVMe only); related disaggregated "
            "designs expect a local cache tier to recover most of the "
            "direct-attached goodput on skewed traffic while the fabric "
            "only taxes misses, and a partition to degrade service "
            "rather than hang it"
        ),
    )

    perf = result.add_table(
        Table(
            "zipf(1.5) 4 KiB 80/20 r/w, 8 MiB hot set, 2 replica nodes",
            ["configuration", "GB/s", "vs_local", "hit_rate", "p99_us"],
        )
    )
    rates = disagg_goodput(quick=quick)
    local = rates["local-only"]["gb_per_s"]
    for config in ("local-only", "remote-direct", "tiered"):
        row = rates[config]
        perf.add_row(
            config,
            row["gb_per_s"],
            row["gb_per_s"] / local if local else 0.0,
            row["hit_rate"],
            row["p99_us"],
        )

    faults = result.add_table(
        Table(
            "tiered stack under fabric faults (closed loop, mixed r/w)",
            ["fault", "offered", "ok", "net_errors", "goodput_GB/s",
             "degraded", "resyncs", "dirty_after", "readback_ok"],
        )
    )
    requests = 160 if quick else 480
    for fault, kwargs in (
        ("none", {}),
        ("partition 0.5-1.5ms", {"partition": (0.5e-3, 1.0e-3)}),
        ("brownout x40 node0", {"brownout": (0.2e-3, 2.0e-3, 40.0)}),
    ):
        out = _chaos_disagg(requests=requests, **kwargs)
        faults.add_row(
            fault,
            out["offered"],
            out["ok"],
            out["errors"],
            to_gb_per_s(out["goodput"]),
            out["degraded_entries"],
            out["resyncs"],
            out["dirty_after"],
            out["readback_failures"] == 0 and out["dirty_after"] == 0,
        )
    result.note(
        "tiered goodput gate (>= 80 % of local-only) is enforced by "
        "run_bench.py's disagg_sweep; the fault panel's readback "
        "re-reads every acked write from the remote tier after resync"
    )
    result.note(
        "remote-direct pays the fabric on every request; the tier pays "
        "it only on cold misses and batched dirty-log write-backs"
    )
    return result
