"""Error propagation through the async API and the prefetch pipeline
under injected faults — with and without the reliability subsystem."""

import numpy as np
import pytest

from repro.config import PlatformConfig
from repro.core import CamAsyncAPI, CamContext, run_prefetch_pipeline
from repro.errors import DeviceError, MediaError, RetryExhaustedError
from repro.hw.faults import FaultInjector
from repro.hw.platform import Platform
from repro.reliability import Reliability
from repro.units import KiB


def _context(num_ssds=2, injector=None, reliable=False):
    platform = Platform(
        PlatformConfig(num_ssds=num_ssds),
        functional=False,
        fault_injector=injector,
    )
    reliability = Reliability(platform) if reliable else None
    return platform, CamContext(platform, reliability=reliability)


def _plant(platform, injector, global_lba, persistent=False):
    ssd, local = platform.ssd_for_lba(global_lba)
    injector.inject_lba(ssd.ssd_id, local, persistent=persistent)


def test_async_wait_reraises_batch_failure():
    injector = FaultInjector()
    platform, context = _context(injector=injector)
    api = CamAsyncAPI(context)
    buffer = context.alloc(512 * KiB)
    lbas = np.arange(8, dtype=np.int64) * 8
    _plant(platform, injector, 16)

    def driver():
        ticket = yield from api.submit(lbas, buffer, 4096)
        with pytest.raises(MediaError, match="1 of 8 requests failed"):
            yield from api.wait(ticket)
        assert api.outstanding == 0

    platform.env.run(platform.env.process(driver()))


def test_async_failure_scoped_to_its_ticket():
    """One failed batch does not poison other outstanding tickets."""
    injector = FaultInjector()
    platform, context = _context(injector=injector)
    api = CamAsyncAPI(context)
    buffer = context.alloc(512 * KiB)
    lbas = np.arange(8, dtype=np.int64) * 8
    _plant(platform, injector, 0)

    def driver():
        bad = yield from api.submit(lbas, buffer, 4096)
        good = yield from api.submit(lbas + 256, buffer, 4096)
        with pytest.raises(DeviceError):
            yield from api.wait(bad)
        yield from api.wait(good)  # unaffected

    platform.env.run(platform.env.process(driver()))
    assert context.manager.batches_done.total == 2


def test_async_retries_absorb_transient_fault():
    injector = FaultInjector()
    platform, context = _context(injector=injector, reliable=True)
    api = CamAsyncAPI(context)
    buffer = context.alloc(512 * KiB)
    lbas = np.arange(8, dtype=np.int64) * 8
    _plant(platform, injector, 16)  # one-shot: first attempt fails

    def driver():
        ticket = yield from api.submit(lbas, buffer, 4096)
        yield from api.wait(ticket)  # no error reaches the application

    platform.env.run(platform.env.process(driver()))
    assert context.reliability.retries.total == 1
    assert injector.faults_delivered == 1


def test_async_persistent_fault_typed_after_retries():
    injector = FaultInjector()
    platform, context = _context(injector=injector, reliable=True)
    api = CamAsyncAPI(context)
    buffer = context.alloc(512 * KiB)
    lbas = np.arange(8, dtype=np.int64) * 8
    _plant(platform, injector, 16, persistent=True)

    def driver():
        ticket = yield from api.submit(lbas, buffer, 4096)
        with pytest.raises(RetryExhaustedError):
            yield from api.wait(ticket)

    platform.env.run(platform.env.process(driver()))
    max_attempts = context.reliability.policy.max_attempts_read
    assert context.reliability.retries.total == max_attempts - 1


def test_pipeline_surfaces_batch_failure_and_releases_buffers():
    injector = FaultInjector()
    platform, context = _context(injector=injector)
    batches = [np.arange(8, dtype=np.int64) * 8 for _ in range(3)]
    _plant(platform, injector, 16)
    computed = []

    def compute(index, buffer):
        computed.append(index)
        yield platform.env.timeout(1e-5)

    def driver():
        yield from run_prefetch_pipeline(
            context, batches, compute, buffer_size=64 * KiB
        )

    with pytest.raises(DeviceError):
        platform.env.run(platform.env.process(driver()))
    # the fault hit the very first prefetch, before any compute ran
    assert computed == []
    # the finally-clause released the double buffer: a new pipeline fits
    injector_free = run_prefetch_pipeline(
        context, batches, compute, buffer_size=64 * KiB
    )
    platform.env.run(platform.env.process(injector_free))
    assert computed == [0, 1, 2]


def test_pipeline_completes_under_transient_faults_with_retries():
    injector = FaultInjector()
    platform, context = _context(injector=injector, reliable=True)
    batches = [np.arange(8, dtype=np.int64) * 8 for _ in range(3)]
    # one transient fault per batch window, all absorbed by retries
    _plant(platform, injector, 0)
    _plant(platform, injector, 8)
    computed = []

    def compute(index, buffer):
        computed.append(index)
        yield platform.env.timeout(1e-5)

    def driver():
        total = yield from run_prefetch_pipeline(
            context, batches, compute, buffer_size=64 * KiB
        )
        return total

    platform.env.run(platform.env.process(driver()))
    assert computed == [0, 1, 2]
    assert context.reliability.retries.total == 2
