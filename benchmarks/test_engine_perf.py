"""Meta-benchmarks: the discrete-event engine's own performance.

These are real wall-clock measurements (the only ones in the repo):
events processed per second bound how large a per-request experiment can
get, so regressions here directly shrink the feasible sweep sizes.
"""

from repro.sim import Environment, Resource, Store


def test_timeout_event_throughput(benchmark):
    def run():
        env = Environment()

        def ticker():
            for _ in range(20_000):
                yield env.timeout(1.0)

        env.run(env.process(ticker()))
        return env.now

    result = benchmark(run)
    assert result == 20_000.0


def test_resource_contention_throughput(benchmark):
    def run():
        env = Environment()
        resource = Resource(env, capacity=4)

        def user():
            for _ in range(500):
                with resource.request() as req:
                    yield req
                    yield env.timeout(0.1)

        for _ in range(16):
            env.process(user())
        env.run()
        return env.now

    benchmark(run)


def test_store_producer_consumer_throughput(benchmark):
    def run():
        env = Environment()
        store = Store(env, capacity=64)

        def producer():
            for item in range(5_000):
                yield store.put(item)

        def consumer():
            for _ in range(5_000):
                yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()

    benchmark(run)


def test_microbench_requests_per_second(benchmark):
    """End-to-end: simulated 4 KiB requests through the CAM plane."""
    from repro.backends import make_backend, measure_throughput
    from repro.config import PlatformConfig
    from repro.hw.platform import Platform

    def run():
        platform = Platform(PlatformConfig(num_ssds=4), functional=False)
        backend = make_backend("cam", platform)
        return measure_throughput(
            backend, 4096, total_requests=1000, concurrency=128
        )

    rate = benchmark(run)
    assert rate > 0
