"""GNN one-step training loop, BaM edition (Table VI row: GNN / BaM).

BaM's synchronous interface keeps the loop simple too (the paper counts
65 vs CAM's 66 lines) — the cost is runtime, not code: every feature
gather blocks, and the I/O engine's SMs starve the training kernel.
"""

import numpy as np

from repro import Platform
from repro.bam import BamSystem
from repro.units import KiB
from repro.workloads.gnn import NeighborSampler, paper100m


def main() -> None:
    platform = Platform(functional=False)
    spec = paper100m().scale(0.002)
    graph = spec.build_graph(seed=7)
    sampler = NeighborSampler(graph, fanouts=(25, 10), seed=7)
    system = BamSystem(platform)
    env = platform.env
    granularity = 4 * KiB
    blocks = granularity // platform.config.ssd.block_size

    def train_step(seeds):
        stats = sampler.sample(seeds)
        # synchronous gather: one blocking access per sampled node
        gathers = [
            env.process(system.io(int(node) * blocks, granularity))
            for node in stats.unique_nodes
        ]
        yield env.all_of(gathers)                   # extract (blocks)
        yield env.timeout(50e-6)                    # model fwd+bwd here

    def epoch():
        yield from system.start_io_engine()
        rng = np.random.default_rng(7)
        for _ in range(8):
            seeds = rng.integers(0, graph.num_nodes, size=64)
            yield from train_step(seeds)
        system.stop_io_engine()

    env.run(env.process(epoch()))
    print(f"bam gnn steps: {env.now * 1e3:.2f} ms, "
          f"{int(system.requests_done.total)} feature reads")


if __name__ == "__main__":
    main()
