"""Fig. 13: CPU cost of processing one request — CAM vs SPDK vs libaio.

Paper: CAM/SPDK retire somewhat fewer instructions than libaio (no kernel
layers) but *far* fewer cycles: their polling loops run cache-resident at
high IPC, while libaio's interrupt-driven kernel path misses caches.
Writes cost more than reads because the slower device means more polling
per completion.

Costs are read from the span trace (``repro.obs``): every request's
``submit`` span (reactors) or ``completion_signal`` span (libaio) is
tagged with the instructions/cycles it charged, and
:meth:`~repro.obs.analyzer.TraceAnalyzer.per_request_cpu_cost`
averages them — the per-request numbers and the exported trace share
one source of truth.
"""

from __future__ import annotations

from repro.backends import make_backend, measure_throughput
from repro.config import PlatformConfig
from repro.experiments.report import ExperimentResult, Table
from repro.hw.platform import Platform
from repro.obs import TraceAnalyzer, install_tracer

#: big enough that full mode (3000 requests x ~4 spans each) never drops
_TRACE_CAPACITY = 1 << 16


def _traced_cost(name: str, is_write: bool, requests: int,
                 concurrency: int = 0):
    """Run one backend under tracing; per-request (instructions, cycles).

    ``concurrency=0`` uses the backend's natural closed-loop depth.
    """
    platform = Platform(PlatformConfig(num_ssds=2), functional=False)
    tracer = install_tracer(platform.env, capacity=_TRACE_CAPACITY)
    backend = make_backend(name, platform)
    measure_throughput(
        backend, 4096, is_write=is_write,
        total_requests=requests,
        concurrency=concurrency or backend.concurrency,
    )
    assert tracer.dropped == 0, "trace ring overflowed"
    return TraceAnalyzer(tracer).per_request_cpu_cost()


def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig13",
        title="CPU instructions and cycles per request",
        paper_expectation=(
            "CAM ~= SPDK < libaio on instructions; CAM/SPDK far below "
            "libaio on cycles (polling IPC); writes cost more than reads"
        ),
    )
    requests = 400 if quick else 3000
    for is_write, rw in ((False, "random read"), (True, "random write")):
        table = result.add_table(
            Table(
                f"{rw}: per-request CPU cost",
                ["system", "instructions", "cycles"],
            )
        )
        for name in ("cam", "spdk"):
            instructions, cycles = _traced_cost(
                name, is_write, requests, concurrency=64
            )
            table.add_row(name, instructions, cycles)
        instructions, cycles = _traced_cost("libaio", is_write, requests)
        table.add_row("libaio", instructions, cycles)
    result.note(
        "BaM is excluded as in the paper: it spends GPU, not CPU, resources"
    )
    result.note(
        "per-request costs are read from cost-tagged spans in the "
        "repro.obs trace, not from the accountants directly"
    )
    return result
