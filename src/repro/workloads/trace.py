"""Trace-driven I/O replay.

A downstream user evaluating CAM against their own workload needs more
than synthetic uniform-random sweeps: this module defines a compact trace
format (parallel numpy arrays of arrival time, LBA, byte count, opcode),
generators for common shapes (zipfian hot spots, sequential streams,
mixed read/write), and a replayer that issues the trace through any
backend — open-loop (honouring arrival times, measuring latency under
load) or closed-loop (as fast as the backend allows, measuring capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

import numpy as np

from repro.backends.base import StorageBackend
from repro.errors import ConfigurationError
from repro.sim.stats import LatencyStat


@dataclass
class IOTrace:
    """A sequence of I/O requests."""

    arrival: np.ndarray  # seconds, non-decreasing
    lba: np.ndarray
    nbytes: np.ndarray
    is_write: np.ndarray  # bool

    def __post_init__(self):
        lengths = {
            len(self.arrival), len(self.lba), len(self.nbytes),
            len(self.is_write),
        }
        if len(lengths) != 1:
            raise ConfigurationError("trace arrays must have equal length")
        if len(self.arrival) == 0:
            raise ConfigurationError("empty trace")
        if np.any(np.diff(self.arrival) < 0):
            raise ConfigurationError("arrival times must be non-decreasing")
        if np.any(self.nbytes <= 0):
            raise ConfigurationError("request sizes must be positive")
        if np.any(self.lba < 0):
            raise ConfigurationError("negative LBA in trace")

    def __len__(self) -> int:
        return len(self.arrival)

    @property
    def total_bytes(self) -> int:
        return int(self.nbytes.sum())

    @property
    def read_fraction(self) -> float:
        return float(1.0 - self.is_write.mean())

    def scaled(self, rate_factor: float) -> "IOTrace":
        """Same requests, arrival times compressed by ``rate_factor``."""
        if rate_factor <= 0:
            raise ConfigurationError("rate_factor must be positive")
        return IOTrace(
            arrival=self.arrival / rate_factor,
            lba=self.lba,
            nbytes=self.nbytes,
            is_write=self.is_write,
        )

    def save(self, path) -> None:
        """Persist the trace as a compressed .npz archive."""
        np.savez_compressed(
            path,
            arrival=self.arrival,
            lba=self.lba,
            nbytes=self.nbytes,
            is_write=self.is_write,
        )

    @classmethod
    def load(cls, path) -> "IOTrace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(path) as data:
            missing = {"arrival", "lba", "nbytes", "is_write"} - set(
                data.files
            )
            if missing:
                raise ConfigurationError(
                    f"trace file missing arrays: {sorted(missing)}"
                )
            return cls(
                arrival=data["arrival"],
                lba=data["lba"],
                nbytes=data["nbytes"],
                is_write=data["is_write"],
            )


def make_zipfian_trace(
    num_requests: int,
    granularity: int = 4096,
    target_iops: float = 500_000.0,
    write_fraction: float = 0.2,
    skew: float = 1.2,
    spread_blocks: int = 1 << 20,
    block_size: int = 512,
    seed: int = 0,
) -> IOTrace:
    """Hot-spot-skewed random I/O with Poisson arrivals."""
    if num_requests < 1:
        raise ConfigurationError("need at least one request")
    if not 0 <= write_fraction <= 1:
        raise ConfigurationError("write_fraction outside [0, 1]")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / target_iops, size=num_requests)
    arrival = np.cumsum(gaps)
    arrival[0] = 0.0
    blocks_per_request = max(1, granularity // block_size)
    slots = max(1, spread_blocks // blocks_per_request)
    ranks = rng.zipf(skew, size=num_requests) % slots
    lba = ranks * blocks_per_request
    nbytes = np.full(num_requests, granularity, dtype=np.int64)
    is_write = rng.random(num_requests) < write_fraction
    return IOTrace(arrival=arrival, lba=lba.astype(np.int64),
                   nbytes=nbytes, is_write=is_write)


def make_sequential_trace(
    num_requests: int,
    granularity: int = 1 << 20,
    target_iops: float = 20_000.0,
    block_size: int = 512,
) -> IOTrace:
    """A single sequential read stream (scan/backup shape)."""
    blocks = max(1, granularity // block_size)
    arrival = np.arange(num_requests) / target_iops
    lba = np.arange(num_requests, dtype=np.int64) * blocks
    return IOTrace(
        arrival=arrival,
        lba=lba,
        nbytes=np.full(num_requests, granularity, dtype=np.int64),
        is_write=np.zeros(num_requests, dtype=bool),
    )


@dataclass
class ReplayReport:
    """Outcome of one trace replay."""

    requests: int
    elapsed: float
    achieved_bytes_per_s: float
    read_latency: LatencyStat = field(default_factory=LatencyStat)
    write_latency: LatencyStat = field(default_factory=LatencyStat)

    def latency_percentile(self, q: float, is_write: bool = False) -> float:
        stat = self.write_latency if is_write else self.read_latency
        return stat.percentile(q)


class TraceReplayer:
    """Replays a trace through a backend."""

    def __init__(self, backend: StorageBackend):
        self.backend = backend
        self.env = backend.env

    def replay(
        self,
        trace: IOTrace,
        open_loop: bool = True,
        concurrency: int = 64,
    ) -> ReplayReport:
        """Run the trace to completion and report latency/throughput.

        Open loop honours arrival times (requests queue if the backend
        falls behind); closed loop ignores them and keeps ``concurrency``
        requests in flight.
        """
        env = self.env
        # requests map to one SSD each when the stripe matches the
        # dominant granularity
        block_size = self.backend.platform.config.ssd.block_size
        common = int(np.bincount(
            trace.nbytes // block_size
        ).argmax())
        self.backend.platform.stripe_blocks = max(1, common)
        report = ReplayReport(
            requests=len(trace), elapsed=0.0, achieved_bytes_per_s=0.0
        )
        start = env.now

        def one(index: int) -> Generator:
            begin = env.now
            yield from self.backend.io(
                int(trace.lba[index]),
                int(trace.nbytes[index]),
                is_write=bool(trace.is_write[index]),
            )
            stat = (
                report.write_latency
                if trace.is_write[index]
                else report.read_latency
            )
            stat.record(env.now - begin)

        if open_loop:
            def dispatcher() -> Generator:
                children = []
                for index in range(len(trace)):
                    delay = start + float(trace.arrival[index]) - env.now
                    if delay > 0:
                        yield env.timeout(delay)
                    children.append(env.process(one(index)))
                yield env.all_of(children)

            env.run(env.process(dispatcher()))
        else:
            cursor = {"next": 0}

            def worker() -> Generator:
                while cursor["next"] < len(trace):
                    index = cursor["next"]
                    cursor["next"] += 1
                    yield from one(index)

            workers = [
                env.process(worker())
                for _ in range(min(concurrency, len(trace)))
            ]
            env.run(env.all_of(workers))

        report.elapsed = env.now - start
        if report.elapsed > 0:
            report.achieved_bytes_per_s = (
                trace.total_bytes / report.elapsed
            )
        return report
