"""Quickstart: the CAM API end to end on a simulated 12-SSD testbed.

Mirrors the paper's Fig. 7 programming example:

* host side — ``CAM_init`` (CamContext), ``CAM_alloc`` / ``CAM_free``;
* device side — fill an LBA array, ``prefetch`` into pinned GPU memory,
  ``prefetch_synchronize``, compute, ``write_back`` the result.

Everything is functional: the bytes that land in the GPU buffer are the
bytes staged on the SSDs, and the written-back result is durable.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Platform
from repro.core import CamContext
from repro.units import KiB, pretty_time
from repro.workloads.vdisk import VirtualDisk


def main() -> None:
    # --- the testbed: A100 + 12 x P5510 (paper Table III) ----------------
    platform = Platform()  # functional: SSDs store real bytes
    env = platform.env
    vdisk = VirtualDisk(platform)

    # stage a recognizable dataset on the SSDs: 256 records of 4 KiB
    granularity = 4 * KiB
    num_records = 256
    records = np.arange(num_records * granularity, dtype=np.uint32) % 251
    vdisk.write_array(0, records.astype(np.uint8))

    # --- CAM_init + CAM_alloc ----------------------------------------
    context = CamContext(platform)
    read_buffer = context.alloc(num_records * granularity)
    api = context.device_api()

    # the "GPU kernel": prefetch all records, compute, write back
    blocks_per_record = granularity // platform.config.ssd.block_size
    lbas = np.arange(num_records, dtype=np.int64) * blocks_per_record

    def kernel():
        # 1) initiate the batched read (leading thread rings the doorbell)
        yield from api.prefetch(lbas, read_buffer, granularity)
        # 2) ... the GPU would compute on the *previous* batch here ...
        # 3) wait until the CPU manager reports every block landed
        yield from api.prefetch_synchronize()

        data = read_buffer.view(np.uint8)
        expected = records.astype(np.uint8)
        assert np.array_equal(data[: len(expected)], expected), (
            "prefetched bytes differ from what was staged!"
        )
        print(f"[{pretty_time(env.now)}] prefetched "
              f"{num_records} x {granularity}B, data verified")

        # negate every byte on the "GPU" and persist the result
        read_buffer.write_bytes(0, 255 - data)
        yield from api.write_back(lbas, read_buffer, granularity)
        yield from api.write_back_synchronize()
        print(f"[{pretty_time(env.now)}] write-back durable")

    env.run(env.process(kernel()))

    # verify durability through the functional disk
    on_disk = vdisk.read_direct(0, num_records * granularity)
    assert np.array_equal(on_disk, 255 - records.astype(np.uint8))
    print("on-disk contents verified after write_back")

    stats = context.manager
    print(f"batches processed by the CPU manager : "
          f"{int(stats.batches_done.total)}")
    print(f"requests fanned out over {platform.num_ssds} SSDs   : "
          f"{int(stats.requests_done.total)}")
    print(f"manager cores active                 : "
          f"{stats.active_reactors} (bounds "
          f"{context.autotuner.bounds if context.autotuner else 'n/a'})")

    context.free(read_buffer)
    context.close()
    print("done.")


if __name__ == "__main__":
    main()
