"""Unit tests for the statistics collectors."""

import pytest

from repro.sim import Counter, Environment, TimeWeightedStat
from repro.sim.stats import LatencyStat


def _advance(env, dt):
    env.process(iter([env.timeout(dt)]))
    env.run()


def test_time_weighted_mean():
    env = Environment()
    stat = TimeWeightedStat(env)

    def proc():
        stat.record(2.0)
        yield env.timeout(1.0)
        stat.record(4.0)
        yield env.timeout(1.0)
        stat.record(0.0)
        yield env.timeout(2.0)

    env.run(env.process(proc()))
    # 2*1 + 4*1 + 0*2 over 4 seconds
    assert stat.mean() == pytest.approx(1.5)
    assert stat.maximum == pytest.approx(4.0)


def test_time_weighted_add_and_reset():
    env = Environment()
    stat = TimeWeightedStat(env, initial=1.0)

    def proc():
        yield env.timeout(2.0)
        stat.add(3.0)
        stat.reset()
        yield env.timeout(1.0)

    env.run(env.process(proc()))
    assert stat.value == pytest.approx(4.0)
    assert stat.mean() == pytest.approx(4.0)  # window restarted


def test_counter_rate():
    env = Environment()
    counter = Counter(env)

    def proc():
        counter.add(10)
        yield env.timeout(2.0)
        counter.add(10)

    env.run(env.process(proc()))
    assert counter.total == 20
    assert counter.rate() == pytest.approx(10.0)


def test_counter_rate_zero_window():
    env = Environment()
    counter = Counter(env)
    counter.add(5)
    assert counter.rate() == 0.0


def test_latency_percentiles():
    stat = LatencyStat()
    for value in range(1, 101):
        stat.record(float(value))
    assert stat.count == 100
    assert stat.mean() == pytest.approx(50.5)
    assert stat.percentile(50) == pytest.approx(50.0)
    assert stat.percentile(99) == pytest.approx(99.0)
    assert stat.percentile(100) == pytest.approx(100.0)
    assert stat.maximum() == pytest.approx(100.0)


def test_latency_percentile_bounds_checked():
    stat = LatencyStat()
    stat.record(1.0)
    with pytest.raises(ValueError):
        stat.percentile(101)


def test_latency_empty():
    stat = LatencyStat()
    assert stat.mean() == 0.0
    assert stat.percentile(50) == 0.0
    assert stat.maximum() == 0.0
