"""SPDK: user-space NVMe driver with reactor threads.

Models the Storage Performance Development Kit the paper builds CAM's CPU
side from: kernel-bypass queue pairs, one dedicated queue pair per NVMe
device, lock-free submission, and polling reactors pinned to cores.

Two roles in the reproduction:

* the **SPDK baseline** of Figs. 8/10/11/14/15/16 — same control plane as
  CAM but a *bounce-buffered* data path (SSD -> CPU DRAM -> cudaMemcpy ->
  GPU);
* the substrate CAM's own CPU managers reuse
  (:mod:`repro.core.control`).
"""

from repro.spdk.driver import SpdkDriver, SpdkQueuePairHandle
from repro.spdk.reactor import Reactor, ReactorPool

__all__ = [
    "Reactor",
    "ReactorPool",
    "SpdkDriver",
    "SpdkQueuePairHandle",
]
