"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim import AllOf, AnyOf, Environment


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(1.5)
        return env.now

    process = env.process(proc())
    result = env.run(process)
    assert result == pytest.approx(1.5)
    assert env.now == pytest.approx(1.5)


def test_timeout_rejects_negative_delay():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_processes_interleave_deterministically():
    env = Environment()
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((name, env.now))

    env.process(worker("a", 2.0))
    env.process(worker("b", 1.0))
    env.process(worker("c", 1.0))
    env.run()
    assert log == [("b", 1.0), ("c", 1.0), ("a", 2.0)]


def test_process_return_value_propagates():
    env = Environment()

    def inner():
        yield env.timeout(1.0)
        return 42

    def outer():
        value = yield env.process(inner())
        return value + 1

    assert env.run(env.process(outer())) == 43


def test_event_succeed_carries_value():
    env = Environment()
    event = env.event()

    def waiter():
        value = yield event
        return value

    def trigger():
        yield env.timeout(3.0)
        event.succeed("payload")

    process = env.process(waiter())
    env.process(trigger())
    assert env.run(process) == "payload"
    assert env.now == pytest.approx(3.0)


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_failed_event_raises_in_waiter():
    env = Environment()
    event = env.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield event
        return "handled"

    def trigger():
        yield env.timeout(1.0)
        event.fail(ValueError("boom"))

    process = env.process(waiter())
    env.process(trigger())
    assert env.run(process) == "handled"


def test_unhandled_failure_surfaces_at_run():
    env = Environment()

    def crasher():
        yield env.timeout(1.0)
        raise RuntimeError("kaboom")

    env.process(crasher())
    with pytest.raises(RuntimeError, match="kaboom"):
        env.run()


def test_run_until_time_stops_exactly():
    env = Environment()
    log = []

    def ticker():
        while True:
            yield env.timeout(1.0)
            log.append(env.now)

    env.process(ticker())
    env.run(until=3.5)
    assert log == [1.0, 2.0, 3.0]
    assert env.now == pytest.approx(3.5)


def test_run_into_past_rejected():
    env = Environment()

    def proc():
        yield env.timeout(5.0)

    env.process(proc())
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="one")
        t2 = env.timeout(2.0, value="two")
        results = yield AllOf(env, [t1, t2])
        return sorted(results.values())

    process = env.process(proc())
    assert env.run(process) == ["one", "two"]
    assert env.now == pytest.approx(2.0)


def test_any_of_resumes_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(10.0, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return list(results.values())

    process = env.process(proc())
    assert env.run(process) == ["fast"]
    assert env.now == pytest.approx(1.0)


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc():
        result = yield AllOf(env, [])
        return result

    assert env.run(env.process(proc())) == {}


def test_interrupt_delivers_cause():
    env = Environment()
    observed = {}

    def sleeper():
        try:
            yield env.timeout(100.0)
        except ProcessInterrupt as interrupt:
            observed["cause"] = interrupt.cause
            observed["time"] = env.now
        return "done"

    def interrupter(victim):
        yield env.timeout(2.0)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    assert env.run(victim) == "done"
    assert observed == {"cause": "wake up", "time": 2.0}


def test_interrupting_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    process = env.process(quick())
    env.run(process)
    with pytest.raises(SimulationError):
        process.interrupt()


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    process = env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run(process)


def test_run_until_event_value():
    env = Environment()
    event = env.event()

    def trigger():
        yield env.timeout(4.0)
        event.succeed(99)

    env.process(trigger())
    assert env.run(until=event) == 99
    assert env.now == pytest.approx(4.0)


def test_waiting_on_already_processed_event():
    env = Environment()
    timeout = env.timeout(1.0, value="v")

    def late_waiter():
        yield env.timeout(2.0)
        value = yield timeout  # long since processed
        return value

    process = env.process(late_waiter())
    assert env.run(process) == "v"
