"""Retry policy: bounded, budgeted exponential backoff in sim-time.

Design constraints:

* **Deterministic.**  The simulation must replay identically run-to-run,
  so jitter comes from an FNV-1a hash of ``(ssd, lba, attempt)`` rather
  than an RNG whose state would depend on call order.
* **Per-op-type budgets.**  Writes ride a slower device path (82 us vs
  15 us media) and block more resources while pending, so they get their
  own attempt cap and cumulative-backoff budget.
* **Bounded.**  Both the attempt count and the total seconds spent
  backing off are capped; whichever runs out first ends the retries and
  the caller surfaces :class:`~repro.errors.RetryExhaustedError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import US


def _hash_unit(*parts: int) -> float:
    """Deterministic pseudo-random float in [0, 1) from integer parts
    (FNV-1a, so retries don't disturb the simulation's RNG streams)."""
    value = 2166136261
    for part in parts:
        value ^= part & 0xFFFFFFFF
        value = (value * 16777619) & 0xFFFFFFFF
    return value / 2.0 ** 32


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and per-op budgets.

    ``max_attempts_*`` counts total attempts including the first one, so
    ``max_attempts_read=4`` means at most three retries.
    """

    max_attempts_read: int = 4
    max_attempts_write: int = 3
    #: first backoff delay; grows by ``backoff_factor`` per retry
    base_delay: float = 10 * US
    backoff_factor: float = 2.0
    #: ceiling for one backoff step
    max_delay: float = 2e-3
    #: jitter added on top of each step, as a fraction of the step
    jitter_fraction: float = 0.25
    #: cumulative backoff budget per operation (seconds of sim-time)
    retry_budget_read: float = 10e-3
    retry_budget_write: float = 20e-3

    def __post_init__(self):
        if self.max_attempts_read < 1 or self.max_attempts_write < 1:
            raise ConfigurationError("max attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ConfigurationError(
                "need 0 <= base_delay <= max_delay"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1]")

    def max_attempts(self, is_write: bool) -> int:
        return self.max_attempts_write if is_write else (
            self.max_attempts_read
        )

    def budget(self, is_write: bool) -> float:
        return self.retry_budget_write if is_write else (
            self.retry_budget_read
        )

    def backoff(
        self,
        attempt: int,
        *,
        ssd_id: int = 0,
        lba: int = 0,
        is_write: bool = False,
    ) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        step = min(
            self.max_delay,
            self.base_delay * self.backoff_factor ** (attempt - 1),
        )
        jitter = step * self.jitter_fraction * _hash_unit(
            ssd_id, lba, attempt, int(is_write)
        )
        return step + jitter

    def should_retry(
        self, attempt: int, spent: float, is_write: bool
    ) -> bool:
        """True if another attempt fits the attempt cap and the budget.

        ``attempt`` is the number of attempts already made; ``spent`` the
        backoff seconds already consumed.
        """
        return (
            attempt < self.max_attempts(is_write)
            and spent < self.budget(is_write)
        )
