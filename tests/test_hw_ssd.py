"""Unit tests for the SSD device model and block store."""

import numpy as np
import pytest

from repro.config import SSDConfig
from repro.errors import InvalidLBAError, SimulationError
from repro.hw.nvme import SQE, NVMeOpcode
from repro.hw.ssd import SSD, BlockStore
from repro.sim import Environment
from repro.units import GiB, KiB, US


# --- BlockStore -------------------------------------------------------------

def test_blockstore_roundtrip():
    store = BlockStore(capacity_bytes=1 * GiB)
    data = np.arange(1024, dtype=np.uint8)
    store.write(4096, data)
    assert np.array_equal(store.read(4096, 1024), data)


def test_blockstore_unwritten_reads_zero():
    store = BlockStore(capacity_bytes=1 * GiB)
    assert not store.read(0, 4096).any()


def test_blockstore_cross_page_write():
    store = BlockStore(capacity_bytes=1 * GiB)
    data = np.full(200 * KiB, 7, dtype=np.uint8)  # spans multiple 64K pages
    store.write(63 * KiB, data)
    assert np.array_equal(store.read(63 * KiB, 200 * KiB), data)
    # neighbours untouched
    assert not store.read(0, 63 * KiB).any()


def test_blockstore_rejects_out_of_range():
    store = BlockStore(capacity_bytes=1024)
    with pytest.raises(InvalidLBAError):
        store.read(1000, 100)
    with pytest.raises(InvalidLBAError):
        store.write(-8, np.zeros(8, dtype=np.uint8))


def test_blockstore_trim_discards():
    store = BlockStore(capacity_bytes=1 * GiB)
    store.write(0, np.ones(4096, dtype=np.uint8))
    assert store.resident_bytes > 0
    store.trim()
    assert store.resident_bytes == 0
    assert not store.read(0, 4096).any()


def test_blockstore_typed_data_roundtrip():
    store = BlockStore(capacity_bytes=1 * GiB)
    values = np.arange(100, dtype=np.int32)
    store.write(512, values)
    back = store.read(512, values.nbytes).view(np.int32)
    assert np.array_equal(back, values)


def test_blockstore_rejects_zero_capacity():
    with pytest.raises(SimulationError):
        BlockStore(capacity_bytes=0)


# --- SSD timing --------------------------------------------------------------

def _make_ssd(env, functional=True):
    # pcie=None isolates device-internal timing
    return SSD(env, SSDConfig(), pcie=None, functional=functional)


def _run_requests(env, ssd, count, opcode, blocks=8, payload=None):
    """Submit `count` commands and wait for all completions."""
    qp = ssd.create_queue_pair()

    def submitter():
        for index in range(count):
            sqe = SQE(
                opcode=opcode,
                lba=index * blocks,
                num_blocks=blocks,
                payload=payload,
            )
            yield qp.submit(sqe)

    def reaper():
        for _ in range(count):
            yield qp.pop_completion()
        return env.now

    env.process(submitter())
    reap = env.process(reaper())
    return env.run(reap)


def test_read_latency_near_calibration():
    env = Environment()
    ssd = _make_ssd(env)
    elapsed = _run_requests(env, ssd, count=1, opcode=NVMeOpcode.READ)
    # one 4 KiB read: ftl + media latency + channel transfer
    assert 15 * US <= elapsed <= 35 * US


def test_write_slower_than_read():
    env1 = Environment()
    read_time = _run_requests(
        env1, _make_ssd(env1), 1, NVMeOpcode.READ
    )
    env2 = Environment()
    write_time = _run_requests(
        env2, _make_ssd(env2), 1, NVMeOpcode.WRITE
    )
    assert write_time > read_time * 3


def test_random_read_iops_near_calibration():
    env = Environment()
    ssd = _make_ssd(env, functional=False)
    count = 3000
    elapsed = _run_requests(env, ssd, count, NVMeOpcode.READ, blocks=8)
    iops = count / elapsed
    # calibration: ~700K IOPS at 4 KiB, channel model gives ~600-700K
    assert 500_000 <= iops <= 750_000


def test_random_write_iops_near_calibration():
    env = Environment()
    ssd = _make_ssd(env, functional=False)
    count = 1200
    elapsed = _run_requests(env, ssd, count, NVMeOpcode.WRITE, blocks=8)
    iops = count / elapsed
    assert 120_000 <= iops <= 180_000


def test_large_reads_approach_sequential_bandwidth():
    env = Environment()
    ssd = _make_ssd(env, functional=False)
    blocks = 256  # 128 KiB
    count = 400
    elapsed = _run_requests(env, ssd, count, NVMeOpcode.READ, blocks=blocks)
    throughput = count * blocks * 512 / elapsed
    assert throughput >= 0.8 * SSDConfig().seq_read_bw
    assert throughput <= 1.05 * SSDConfig().seq_read_bw


def test_functional_write_then_read_roundtrip():
    env = Environment()
    ssd = _make_ssd(env)
    qp = ssd.create_queue_pair()
    payload = np.arange(4096, dtype=np.uint8) % 251

    def proc():
        yield qp.submit(
            SQE(NVMeOpcode.WRITE, lba=100, num_blocks=8, payload=payload)
        )
        yield qp.pop_completion()
        yield qp.submit(SQE(NVMeOpcode.READ, lba=100, num_blocks=8))
        cqe = yield qp.pop_completion()
        return cqe.value

    data = env.run(env.process(proc()))
    assert np.array_equal(data, payload)


def test_read_out_of_range_lba_fails_loudly():
    env = Environment()
    config = SSDConfig()
    ssd = SSD(env, config, pcie=None)
    qp = ssd.create_queue_pair()
    bad_lba = config.capacity_bytes // config.block_size  # one past the end

    def proc():
        yield qp.submit(SQE(NVMeOpcode.READ, lba=bad_lba, num_blocks=8))
        yield qp.pop_completion()

    env.process(proc())
    with pytest.raises(InvalidLBAError):
        env.run()


def test_stats_counters_track_requests():
    env = Environment()
    ssd = _make_ssd(env, functional=False)
    _run_requests(env, ssd, 10, NVMeOpcode.READ, blocks=8)
    assert ssd.reads_completed.total == 10
    assert ssd.bytes_read.total == 10 * 8 * 512
    assert ssd.read_latency.count == 10
