"""GNN model cost models: GCN, GAT, GraphSAGE (paper Table V setup).

Per-batch training time = (forward + backward) FLOPs divided by the
achievable GPU rate.  FLOPs follow the standard per-layer decomposition:

* aggregation  ~ ``2 x edges x dim`` (sparse gather-scatter);
* transform    ~ ``2 x nodes x d_in x d_out`` (dense GEMM);
* GAT adds per-edge attention scoring/softmax ~ ``10 x edges x dim``.

``sm_efficiency`` captures how far real sparse GNN kernels sit below
peak FP32 (launch overhead, irregular access, optimizer step); the values
are calibrated so GIDS's Fig. 1 time breakdown lands in the paper's
ranges — GAT the most compute-intensive, GCN the least.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from repro.config import GPUConfig
from repro.errors import ConfigurationError

#: forward + backward multiplier (backward ~ 2x forward)
_TRAIN_MULTIPLIER = 3.0


@dataclass(frozen=True)
class GNNModelSpec:
    """One GNN architecture's cost model."""

    name: str
    hidden_dim: int = 128
    #: attention FLOPs per edge per feature dim (0 for non-attention models)
    attention_cost: float = 0.0
    #: transform multiplier (GraphSAGE concatenates self || neighbor => 2x)
    transform_multiplier: float = 1.0
    #: fraction of FP32 peak the training kernels sustain
    sm_efficiency: float = 0.05

    def flops(
        self,
        layer_nodes: Sequence[int],
        layer_edges: Sequence[int],
        in_dim: int,
    ) -> float:
        """Forward-pass FLOPs for one sampled batch.

        ``layer_nodes[i]`` / ``layer_edges[i]`` are the frontier/edge
        counts of hop ``i`` (outermost hop last, as the sampler returns).
        """
        if len(layer_nodes) != len(layer_edges):
            raise ConfigurationError("layer_nodes/layer_edges mismatch")
        total = 0.0
        dim_in = in_dim
        for nodes, edges in zip(reversed(layer_nodes),
                                reversed(layer_edges)):
            dim_out = self.hidden_dim
            total += 2.0 * edges * dim_in  # aggregation
            total += (
                2.0 * self.transform_multiplier * nodes * dim_in * dim_out
            )
            total += self.attention_cost * edges * dim_out
            dim_in = dim_out
        return total

    def train_time(
        self,
        gpu: GPUConfig,
        layer_nodes: Sequence[int],
        layer_edges: Sequence[int],
        in_dim: int,
        sms_fraction: float = 1.0,
    ) -> float:
        """Seconds of GPU time for one batch (forward + backward)."""
        if not 0 < sms_fraction <= 1:
            raise ConfigurationError("sms_fraction outside (0, 1]")
        flops = self.flops(layer_nodes, layer_edges, in_dim)
        # wider inputs mean fatter, better-utilized GEMMs: efficiency
        # grows sublinearly with the input width (a 1024-dim IGB layer
        # runs closer to peak than a 128-dim Paper100M layer)
        width_scale = min(4.0, max(1.0, (in_dim / 128.0) ** 0.65))
        rate = (
            gpu.fp32_flops * self.sm_efficiency * width_scale * sms_fraction
        )
        return (
            _TRAIN_MULTIPLIER * flops / rate
            + 12 * gpu.kernel_launch_overhead
        )


def gcn(hidden_dim: int = 128) -> GNNModelSpec:
    """Graph Convolutional Network [Kipf & Welling] — lightest compute."""
    return GNNModelSpec(
        name="GCN", hidden_dim=hidden_dim, sm_efficiency=0.30
    )


def graphsage(hidden_dim: int = 128) -> GNNModelSpec:
    """GraphSAGE [Hamilton et al.] — concat doubles the transform."""
    return GNNModelSpec(
        name="GRAPHSAGE",
        hidden_dim=hidden_dim,
        transform_multiplier=2.0,
        sm_efficiency=0.28,
    )


def gat(hidden_dim: int = 128) -> GNNModelSpec:
    """Graph Attention Network [Velickovic et al.] — the most intensive
    computations of the three (paper Section IV-C); per-edge attention
    kernels run far from peak, hence the low efficiency."""
    return GNNModelSpec(
        name="GAT",
        hidden_dim=hidden_dim,
        attention_cost=10.0,
        transform_multiplier=2.0,
        sm_efficiency=0.11,
    )


MODELS: Dict[str, Callable[[], GNNModelSpec]] = {
    "gcn": gcn,
    "gat": gat,
    "graphsage": graphsage,
}
