"""SPDK reactors: polling CPU cores that own NVMe queue pairs.

A reactor is modelled as a serial CPU stage (capacity-1 resource): every
request charged to it pays ``per_request_cpu`` seconds of submission +
completion-poll work.  A reactor that owns more SSDs than its IOPS budget
covers becomes the bottleneck — the effect Fig. 12 measures (1 core drives
2 SSDs losslessly; 4 SSDs degrade to ~75 %).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.config import SPDKConfig
from repro.errors import ConfigurationError
from repro.hw.cpu import CycleAccountant
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.sim.stats import Counter


class Reactor:
    """One polling core."""

    def __init__(
        self,
        env: Environment,
        reactor_id: int,
        config: SPDKConfig,
        cpu=None,
    ):
        self.env = env
        self.reactor_id = reactor_id
        self.config = config
        self._serial = Resource(env, capacity=1)
        self.requests = Counter(env)
        self.accountant = CycleAccountant()
        self._core_grant = None
        if cpu is not None:
            # occupy a physical core for the reactor's lifetime
            self._core_grant = cpu.acquire_core()

    def charge(
        self, seconds: Optional[float] = None, parent=None
    ) -> Generator:
        """Process: serialized CPU work on this reactor.

        Returns the ``submit`` span covering the busy time (or ``None``
        when tracing is disabled), so callers can attach request tags.
        The span excludes the wait for the core — per-reactor
        utilization sums span durations, so only busy time may count.
        """
        cost = self.config.per_request_cpu if seconds is None else seconds
        span = None
        with self._serial.request() as slot:
            yield slot
            tracer = self.env.tracer
            if tracer.enabled:
                span = tracer.begin(
                    "submit", parent=parent, reactor=self.reactor_id
                )
            yield self.env.timeout(cost)
            if span is not None:
                tracer.end(span)
        self.requests.add()
        return span

    def account_request(self, poll_iterations: float = 1.0) -> dict:
        """Record Fig. 13-style instruction counts for one request.

        Returns the charged ``instructions``/``cycles`` so the caller
        can tag the request's span with them (Fig. 13 via the trace).
        """
        submit_instructions = self.config.submit_instructions
        poll_instructions = (
            self.config.poll_instructions_per_iter * poll_iterations
        )
        self.accountant.charge(
            "submit", submit_instructions, self.config.work_ipc
        )
        self.accountant.charge(
            "poll", poll_instructions, self.config.poll_ipc
        )
        self.accountant.complete_request()
        return {
            "instructions": submit_instructions + poll_instructions,
            "cycles": (
                submit_instructions / self.config.work_ipc
                + poll_instructions / self.config.poll_ipc
            ),
            "poll_iterations": poll_iterations,
        }

    def account_batch(self, count: int, poll_iterations: float = 1.0) -> None:
        """Bulk form of :meth:`account_request` for coalesced submission.

        Charging is linear in the request count, so one call with ``count``
        requests leaves the accountant in exactly the state ``count``
        :meth:`account_request` calls would.
        """
        self.accountant.charge(
            "submit",
            count * self.config.submit_instructions,
            self.config.work_ipc,
        )
        self.accountant.charge(
            "poll",
            count * self.config.poll_instructions_per_iter * poll_iterations,
            self.config.poll_ipc,
        )
        self.accountant.complete_request(count)

    @property
    def iops_capacity(self) -> float:
        return 1.0 / self.config.per_request_cpu


class ReactorPool:
    """A set of reactors with an SSD -> reactor assignment.

    ``ssds_per_reactor`` > 1 reproduces the paper's "one CPU thread
    controls multiple NVMes" experiment; assignment is round-robin so load
    spreads evenly.
    """

    def __init__(
        self,
        env: Environment,
        num_ssds: int,
        num_reactors: int,
        config: SPDKConfig,
        cpu=None,
    ):
        if num_reactors < 1:
            raise ConfigurationError("need at least one reactor")
        if num_ssds < 1:
            raise ConfigurationError("need at least one SSD")
        self.env = env
        self.config = config
        self.reactors: List[Reactor] = [
            Reactor(env, index, config, cpu=cpu)
            for index in range(num_reactors)
        ]
        self._assignment = [
            index % num_reactors for index in range(num_ssds)
        ]

    def remap(self, active_count: int) -> None:
        """Re-assign every SSD round-robin over the first ``active_count``
        reactors (the Fig. 12 dynamic core adjustment).

        Reactors beyond ``active_count`` keep existing but receive no new
        work; in-flight requests on them drain normally.
        """
        if not 1 <= active_count <= len(self.reactors):
            raise ConfigurationError(
                f"active reactor count {active_count} outside "
                f"[1, {len(self.reactors)}]"
            )
        self._assignment = [
            index % active_count for index in range(len(self._assignment))
        ]

    def reactor_for(self, ssd_index: int) -> Reactor:
        if not 0 <= ssd_index < len(self._assignment):
            raise ConfigurationError(f"no SSD {ssd_index} in reactor map")
        return self.reactors[self._assignment[ssd_index]]

    @property
    def num_reactors(self) -> int:
        return len(self.reactors)

    def ssds_on_reactor(self, reactor_id: int) -> int:
        return sum(1 for r in self._assignment if r == reactor_id)

    def total_requests(self) -> float:
        return sum(reactor.requests.total for reactor in self.reactors)
