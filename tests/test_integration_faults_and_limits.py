"""Integration tests: faults through workloads, paper limitations,
model monotonicity properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import make_backend
from repro.config import PlatformConfig
from repro.core import CamContext
from repro.errors import DeviceError
from repro.hw.faults import FaultInjector
from repro.hw.platform import Platform
from repro.model.throughput import ThroughputModel
from repro.units import KiB


# --- faults reaching workloads ---------------------------------------------

def test_sort_surfaces_device_error():
    """A planted media error fails the sort loudly, not silently."""
    from repro.workloads.sort import OutOfCoreSorter

    injector = FaultInjector()
    platform = Platform(
        PlatformConfig(num_ssds=2), fault_injector=injector
    )
    backend = make_backend("cam", platform)
    sorter = OutOfCoreSorter(
        platform, backend, chunk_bytes=128 * KiB, granularity=64 * KiB
    )
    rng = np.random.default_rng(1)
    sorter.stage(rng.integers(-100, 100, size=1 << 16, dtype=np.int32))
    # fail a block in the staged region on every SSD
    for ssd in platform.ssds:
        injector.inject_lba(ssd.ssd_id, 0)
    # bulk (analytic) I/O does not touch the device; drive one real
    # request to show the error path: the SPDK-style driver reports the
    # failed CQE, which CAM's batch path would turn into a DeviceError
    def probe():
        cqe = yield from backend.io(0, 4096)
        return cqe

    cqe = platform.env.run(platform.env.process(probe()))
    assert not cqe.ok


def test_probabilistic_faults_dont_deadlock_cam():
    """Under a high random error rate, CAM keeps completing batches and
    reports each failure."""
    injector = FaultInjector(error_rate=0.2, seed=3)
    platform = Platform(
        PlatformConfig(num_ssds=2), functional=False,
        fault_injector=injector,
    )
    context = CamContext(platform)
    buffer = context.alloc(256 * KiB)
    api = context.device_api()
    failures = 0
    successes = 0

    def kernel():
        nonlocal failures, successes
        for round_index in range(10):
            lbas = np.arange(8, dtype=np.int64) * 8 + round_index * 64
            yield from api.prefetch(lbas, buffer, 4096)
            try:
                yield from api.prefetch_synchronize()
                successes += 1
            except DeviceError:
                failures += 1

    platform.env.run(platform.env.process(kernel()))
    assert failures + successes == 10
    assert failures >= 1  # at 20% per request, some batch failed
    assert context.manager.batches_done.total == 10


# --- paper Section III-C limitations, demonstrated -----------------------------

def test_concurrent_writers_risk_lost_updates():
    """Paper: "concurrent access to the same data blocks by multiple
    processes risks data consistency issues" — CAM offers no inter-
    context locking, so racing write_backs interleave arbitrarily."""
    platform = Platform(PlatformConfig(num_ssds=2))
    context_a = CamContext(platform)
    context_b = CamContext(platform)
    buf_a = context_a.alloc(4096)
    buf_b = context_b.alloc(4096)
    buf_a.write_bytes(0, np.full(4096, 0xAA, dtype=np.uint8))
    buf_b.write_bytes(0, np.full(4096, 0xBB, dtype=np.uint8))
    api_a = context_a.device_api()
    api_b = context_b.device_api()
    lba = np.array([0], dtype=np.int64)

    def writer(api, buf):
        yield from api.write_back(lba, buf, 4096)
        yield from api.write_back_synchronize()

    a = platform.env.process(writer(api_a, buf_a))
    b = platform.env.process(writer(api_b, buf_b))
    platform.env.run(platform.env.all_of([a, b]))
    from repro.workloads.vdisk import VirtualDisk

    on_disk = VirtualDisk(platform).read_direct(0, 4096)
    # one write won, whole-block — but nothing serialized them; the
    # surviving value is an artifact of simulation ordering
    assert on_disk[0] in (0xAA, 0xBB)
    assert (on_disk == on_disk[0]).all()


def test_cam_requires_raw_block_devices():
    """Paper: CAM operates without a file system; its API speaks LBAs
    only (no open/read/write path exists)."""
    platform = Platform(PlatformConfig(num_ssds=1), functional=False)
    context = CamContext(platform)
    api = context.device_api()
    for method in ("open", "read_file", "pread"):
        assert not hasattr(api, method)


# --- analytic model properties ---------------------------------------------

@given(
    cores=st.integers(1, 12),
    more=st.integers(1, 12),
    granularity=st.sampled_from([512, 4096, 65536, 1 << 20]),
    is_write=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_model_monotone_in_cores(cores, more, granularity, is_write):
    model = ThroughputModel(PlatformConfig())
    low = model.throughput("cam", granularity, is_write, cores=cores)
    high = model.throughput(
        "cam", granularity, is_write, cores=cores + more
    )
    assert high >= low * 0.999


@given(
    num_ssds=st.integers(1, 12),
    backend=st.sampled_from(["cam", "spdk", "bam", "posix", "gds"]),
    granularity=st.sampled_from([512, 4096, 131072]),
)
@settings(max_examples=60, deadline=None)
def test_model_write_never_exceeds_read(num_ssds, backend, granularity):
    model = ThroughputModel(PlatformConfig())
    read = model.throughput(backend, granularity, False, num_ssds=num_ssds)
    write = model.throughput(backend, granularity, True, num_ssds=num_ssds)
    assert write <= read * 1.001


@given(
    backend=st.sampled_from(["cam", "spdk", "bam"]),
    granularity=st.sampled_from([512, 4096, 65536]),
)
@settings(max_examples=30, deadline=None)
def test_model_never_exceeds_pcie(backend, granularity):
    from repro.model.throughput import pcie_payload_bandwidth

    config = PlatformConfig()
    model = ThroughputModel(config)
    rate = model.throughput(backend, granularity, False)
    assert rate <= pcie_payload_bandwidth(config, granularity) * 1.001
