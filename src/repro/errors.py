"""Exception hierarchy for the CAM reproduction.

All library errors derive from :class:`ReproError` so that applications can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimulationError(ReproError):
    """Generic failure inside the discrete-event engine."""


class ProcessInterrupt(ReproError):
    """Raised inside a simulated process when another process interrupts it.

    The interrupting party may attach a ``cause`` describing why.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class DeviceError(ReproError):
    """A simulated hardware device rejected an operation."""


class MediaError(DeviceError):
    """An unrecovered media error (non-zero NVMe CQE status).

    Carries enough context for callers to decide whether the failure is
    retryable (``status``), where it happened (``ssd_id``/``lba``) and
    how hard the control plane already tried (``attempts``).
    """

    def __init__(self, message, *, ssd_id=None, lba=None, status=None,
                 attempts=1):
        super().__init__(message)
        self.ssd_id = ssd_id
        self.lba = lba
        self.status = status
        self.attempts = attempts


class RetryExhaustedError(MediaError):
    """A retryable fault persisted past the retry policy's budget.

    Distinguishes "the device said no once" (:class:`MediaError`) from
    "we retried ``attempts`` times and it still fails" — the latter is
    fatal to the request, not merely transient.
    """


class DeviceTimeoutError(DeviceError, TimeoutError):
    """A completion never arrived within the watchdog's deadline.

    Subclasses :class:`ReproError` (via :class:`DeviceError`) *and* the
    built-in :class:`TimeoutError` so generic timeout handling works.
    """

    def __init__(self, message, *, ssd_id=None, lba=None, attempts=1,
                 timeout=None):
        super().__init__(message)
        self.ssd_id = ssd_id
        self.lba = lba
        self.attempts = attempts
        self.timeout = timeout


class DeviceOfflineError(DeviceTimeoutError):
    """The target device is offline (dropped off the bus or its circuit
    breaker is open); the request cannot complete until it returns."""


class ReactorOfflineError(DeviceError):
    """The reactor (CPU poller) owning a queue pair stalled or crashed.

    Raised when work is charged to a reactor that has been declared dead
    and no surviving reactor has taken over its SSDs (yet).  Carries the
    dead reactor's id so failover logic can re-home the request.
    """

    def __init__(self, message, *, reactor_id=None, ssd_id=None, lba=None,
                 attempts=1):
        super().__init__(message)
        self.reactor_id = reactor_id
        self.ssd_id = ssd_id
        self.lba = lba
        self.attempts = attempts


class OverloadError(ReproError):
    """Admission control shed this request to protect in-flight work.

    Deterministic backpressure: the submitter exceeded the configured
    in-flight request/byte bounds and must retry later (or slow down).
    Carries the offered and admitted load so callers can reason about
    how oversubscribed the control plane was.
    """

    def __init__(self, message, *, requests=0, nbytes=0,
                 inflight_requests=0, inflight_bytes=0,
                 max_requests=None, max_bytes=None):
        super().__init__(message)
        self.requests = requests
        self.nbytes = nbytes
        self.inflight_requests = inflight_requests
        self.inflight_bytes = inflight_bytes
        self.max_requests = max_requests
        self.max_bytes = max_bytes


class InvalidLBAError(DeviceError):
    """An I/O request targeted a logical block address outside the device."""


class QueueFullError(DeviceError):
    """An NVMe submission queue had no free slot for a new command."""


class AllocationError(ReproError):
    """GPU/host memory allocation failed (out of simulated memory)."""


class APIUsageError(ReproError):
    """A public API was called in an invalid order or with invalid state,
    e.g. ``prefetch_synchronize`` without a preceding ``prefetch``.
    """


class FileSystemError(ReproError):
    """Simulated file-system failure (bad handle, out-of-range offset...)."""
