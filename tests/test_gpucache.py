"""GPU cache tier: policies, readahead detector, plan/commit protocol,
backend wrapper, serving + graph integration, telemetry."""

import pytest

from repro.backends import make_backend
from repro.cache import (
    FifoLines,
    GpuCache,
    GpuCacheCompletion,
    LruLines,
    ReadaheadConfig,
    ReadaheadStream,
    make_line_policy,
)
from repro.config import PlatformConfig
from repro.errors import ConfigurationError
from repro.hw.platform import Platform
from repro.units import KiB


def _platform(num_ssds=2):
    return Platform(PlatformConfig(num_ssds=num_ssds), functional=False)


def _cache(platform=None, lines=4, line_bytes=4096, readahead=False,
           **kwargs):
    platform = platform or _platform()
    return platform, GpuCache(
        platform, capacity_bytes=lines * line_bytes,
        line_bytes=line_bytes, readahead=readahead, **kwargs,
    )


# --- replacement policies ---------------------------------------------------

def test_lru_policy_evicts_least_recently_used():
    lru = LruLines()
    for line in (1, 2, 3):
        lru.admit(line)
    lru.touch(1)
    assert lru.evict() == 2
    assert lru.evict() == 3
    assert lru.evict() == 1
    assert lru.evict() is None


def test_fifo_policy_ignores_recency():
    fifo = FifoLines()
    for line in (1, 2, 3):
        fifo.admit(line)
    fifo.touch(1)
    fifo.admit(1)  # re-admission keeps queue position
    assert fifo.evict() == 1
    assert fifo.evict() == 2


def test_make_line_policy():
    assert isinstance(make_line_policy("lru"), LruLines)
    assert isinstance(make_line_policy("fifo"), FifoLines)
    with pytest.raises(ConfigurationError):
        make_line_policy("clock")


# --- readahead detector -----------------------------------------------------

def test_detector_predicts_sequential_run_after_min_run():
    stream = ReadaheadStream(ReadaheadConfig(depth=3, min_run=3))
    assert stream.observe(10) == []
    assert stream.observe(11) == []
    # third access completes the min_run=3 stride-1 pattern
    assert stream.observe(12) == [13, 14, 15]


def test_detector_predicts_strided_pattern():
    stream = ReadaheadStream(ReadaheadConfig(depth=2, min_run=3))
    for line in (0, 4, 8):
        predictions = stream.observe(line)
    assert predictions == [12, 16]


def test_detector_stride_change_resets_run():
    stream = ReadaheadStream(ReadaheadConfig(depth=2, min_run=3))
    stream.observe(0)
    stream.observe(1)
    stream.observe(5)   # stride breaks
    assert stream.observe(6) == []      # run=2 only
    assert stream.observe(7) == [8, 9]  # pattern re-established


def test_detector_repeat_access_is_neutral():
    stream = ReadaheadStream(ReadaheadConfig(depth=2, min_run=3))
    stream.observe(0)
    stream.observe(1)
    assert stream.observe(1) == []      # repeat: no prediction
    assert stream.observe(2) == [3, 4]  # but the run survived


def test_detector_throttles_on_low_accuracy_then_reprobes():
    config = ReadaheadConfig(
        depth=4, min_run=2, min_accuracy=0.5, probation=4, cooldown=3
    )
    stream = ReadaheadStream(config)
    stream.observe(0)
    predictions = stream.observe(1)
    assert predictions
    stream.charge(len(predictions))  # 4 issued, 0 used -> violation
    assert stream.observe(2) == []   # throttled
    assert stream.throttled
    assert stream.throttles == 1
    # sit out the cooldown; counters reset for a fresh probation
    for line in (3, 4, 5):
        stream.observe(line)
    assert not stream.throttled
    assert stream.issued == 0 and stream.used == 0
    assert stream.observe(6) != []


def test_detector_accurate_stream_never_throttles():
    config = ReadaheadConfig(
        depth=1, min_run=2, min_accuracy=0.5, probation=2, cooldown=8
    )
    stream = ReadaheadStream(config)
    stream.observe(0)
    for line in range(1, 20):
        predictions = stream.observe(line)
        assert predictions == [line + 1]
        stream.charge(1)
        stream.credit()
    assert stream.throttles == 0


def test_readahead_config_validation():
    with pytest.raises(ConfigurationError):
        ReadaheadConfig(depth=0)
    with pytest.raises(ConfigurationError):
        ReadaheadConfig(min_run=1)
    with pytest.raises(ConfigurationError):
        ReadaheadConfig(min_accuracy=1.5)
    with pytest.raises(ConfigurationError):
        ReadaheadConfig(cooldown=0)


# --- GpuCache plan/commit ---------------------------------------------------

def test_cache_geometry_and_validation():
    platform = _platform()
    with pytest.raises(ConfigurationError):
        GpuCache(platform, capacity_bytes=100, line_bytes=4096)
    with pytest.raises(ConfigurationError):
        GpuCache(platform, capacity_bytes=1 << 20, line_bytes=1000)
    _, cache = _cache(platform)
    assert cache.line_of(0) == 0
    assert cache.line_of(8) == 1       # 8 * 512B = one 4 KiB line
    assert cache.line_lba(2) == 16


def test_batch_miss_then_hit_accounting():
    platform, cache = _cache()
    plan = cache.access_batch([0, 8], granularity=4096)
    assert plan.missing_lbas == [0, 8] and not plan.hit_lbas
    cache.commit(plan)
    plan = cache.access_batch([0, 8, 16], granularity=4096)
    assert plan.hit_lbas == [0, 8]
    assert plan.missing_lbas == [16]
    assert cache.hits == 2 and cache.misses == 3
    assert cache.hit_rate() == pytest.approx(2 / 5)


def test_batch_item_crossing_lines_rejected():
    platform, cache = _cache()
    with pytest.raises(ConfigurationError):
        cache.access_batch([4], granularity=4096)  # straddles lines 0/1
    with pytest.raises(ConfigurationError):
        cache.access_batch([0], granularity=8192)  # bigger than a line


def test_eviction_respects_capacity_and_counts():
    platform, cache = _cache(lines=2)
    for lba in (0, 8, 16):
        cache.commit(cache.access_batch([lba]))
    assert cache.resident_lines == 2
    assert cache.evictions == 1
    assert not cache.is_resident(0)   # LRU victim


def test_uncommitted_miss_is_inflight_not_resident():
    platform, cache = _cache()
    plan = cache.access_batch([0])
    # a second access while the fetch is in flight is still a miss
    plan2 = cache.access_batch([0])
    assert plan2.missing_lbas == [0]
    assert cache.misses == 2
    cache.commit(plan)
    cache.commit(plan2)
    assert cache.resident_lines == 1


def test_abort_clears_inflight():
    platform, cache = _cache()
    plan = cache.access_batch([0])
    cache.abort(plan)
    assert cache.resident_lines == 0
    plan = cache.access_batch([0])
    assert plan.missing_lbas == [0]
    cache.commit(plan)
    assert cache.is_resident(0)


def test_readahead_issue_use_and_waste_accounting():
    platform, cache = _cache(
        lines=16,
        readahead=ReadaheadConfig(depth=2, min_run=2, probation=64),
    )
    cache.commit(cache.access_batch([0]))
    plan = cache.access_batch([8])  # stride-1 line pattern confirmed
    assert plan.speculative_lines == [2, 3]
    assert plan.speculative_lbas == [16, 24]
    assert cache.readahead_issued == 2
    cache.commit(plan)
    # demand access consumes one speculative line -> used
    plan = cache.access_batch([16])
    assert plan.hit_lbas == [16]
    assert cache.readahead_used == 1
    # stream accuracy reflects the credit
    assert cache.stream(0).used == 1


def test_unused_speculative_eviction_counts_as_waste():
    platform, cache = _cache(
        lines=2,
        readahead=ReadaheadConfig(depth=1, min_run=2, probation=64),
    )
    cache.commit(cache.access_batch([0]))
    plan = cache.access_batch([8])   # speculates line 2
    cache.commit(plan)               # cache now over capacity -> evict
    # keep pushing demand lines until the speculative line is evicted
    cache.commit(cache.access_batch([32]))
    cache.commit(cache.access_batch([40]))
    assert cache.readahead_wasted >= 1
    assert cache.readahead_used == 0


def test_demand_hit_on_inflight_speculation_credits_stream():
    platform, cache = _cache(
        lines=8,
        readahead=ReadaheadConfig(depth=1, min_run=2, probation=64),
    )
    cache.commit(cache.access_batch([0]))
    plan = cache.access_batch([8])   # line 2 now speculative-inflight
    assert plan.speculative_lines == [2]
    demand = cache.access_batch([16])  # wants line 2 before it landed
    assert demand.missing_lbas == [16]
    assert cache.readahead_used == 1   # prediction was right anyway
    cache.commit(plan)
    cache.commit(demand)


def test_streams_are_per_consumer():
    platform, cache = _cache(
        lines=16,
        readahead=ReadaheadConfig(depth=1, min_run=2, probation=64),
    )
    # interleaved consumers: each sees its own sequential stream
    cache.commit(cache.access_batch([0], consumer="a"))
    cache.commit(cache.access_batch([80], consumer="b"))
    plan_a = cache.access_batch([8], consumer="a")
    plan_b = cache.access_batch([88], consumer="b")
    assert plan_a.speculative_lines == [2]
    assert plan_b.speculative_lines == [12]
    assert cache.stream("a") is not cache.stream("b")


def test_access_span_partial_hit_fetches_only_missing_window():
    platform, cache = _cache(lines=16)
    cache.commit(cache.access_batch([0]))   # line 0 resident
    plan = cache.access_span(0, 4 * 4096)   # lines 0..3
    assert plan.hit_lines == [0]
    assert plan.missing_lines == [1, 2, 3]
    assert plan.fetch_lba == 8              # starts at line 1
    assert plan.fetch_nbytes == 3 * 4096
    assert plan.fetch_offset_bytes == 4096
    assert plan.hit_bytes == 4096


def test_access_span_interior_hit_still_fetches_one_window():
    platform, cache = _cache(lines=16)
    cache.commit(cache.access_batch([8]))   # line 1 resident (interior)
    plan = cache.access_span(0, 3 * 4096)   # lines 0..2
    assert plan.missing_lines == [0, 2]
    # one contiguous window covering both misses (line 1 refetched)
    assert plan.fetch_lba == 0
    assert plan.fetch_nbytes == 3 * 4096
    assert plan.hit_bytes == 0


def test_fill_admits_only_fully_covered_lines():
    platform, cache = _cache(lines=8)
    cache.fill([0], granularity=4096)       # full line 0
    cache.fill([8], granularity=2048)       # half of line 1
    assert cache.is_resident(0)
    assert not cache.is_resident(8)
    assert cache.fills == 1


# --- telemetry --------------------------------------------------------------

def test_gpucache_families_reach_registry_sampler_and_top():
    from repro.obs import MetricsSampler, install_metrics
    from repro.tools.top import render_sample

    platform = _platform()
    metrics = install_metrics(platform.env)
    _, cache = _cache(
        platform,
        lines=8,
        readahead=ReadaheadConfig(depth=1, min_run=2, probation=64),
    )
    sampler = MetricsSampler(metrics, gpu_cache=cache, autostart=False)
    cache.commit(cache.access_batch([0]))
    cache.commit(cache.access_batch([8]))
    cache.commit(cache.access_batch([0]))
    _, snap = sampler.sample_now()
    assert snap["cam_gpucache_hits_total"] == 1
    assert snap["cam_gpucache_misses_total"] == 2
    assert snap["cam_gpucache_hit_rate"] == pytest.approx(1 / 3)
    # lines 0, 1 demand-resident plus the committed speculative line 2
    assert snap["cam_gpucache_resident_lines"] == 3
    assert snap["cam_gpucache_readahead_issued_total"] == 1
    screen = render_sample(sampler.latest())
    assert "GPUCACHE" in screen
    assert "readahead" in screen


def test_gpucache_without_metrics_registers_nothing():
    platform, cache = _cache()
    cache.commit(cache.access_batch([0]))
    assert not platform.env.metrics.enabled


# --- the backend wrapper ----------------------------------------------------

def _gpu_cached(num_ssds=2, lines=8, inner="spdk", readahead=False):
    from repro.cache import GpuCachedBackend

    platform = _platform(num_ssds)
    backend = make_backend(inner, platform)
    cache = GpuCache(
        platform, capacity_bytes=lines * 4096, line_bytes=4096,
        readahead=readahead,
    )
    return platform, GpuCachedBackend(backend, cache)


def test_backend_hit_is_much_faster_than_miss():
    platform, backend = _gpu_cached()
    env = platform.env

    def proc():
        start = env.now
        yield from backend.io(0, 4096)
        miss_time = env.now - start
        start = env.now
        cqe = yield from backend.io(0, 4096)
        return miss_time, env.now - start, cqe

    miss_time, hit_time, cqe = env.run(env.process(proc()))
    assert hit_time < miss_time / 100   # HBM vs SSD round trip
    assert isinstance(cqe, GpuCacheCompletion)
    assert cqe.command_id is None


def test_backend_partial_hit_fetches_only_missing_span():
    platform, backend = _gpu_cached()
    env = platform.env
    fetches = []
    inner_io = backend.inner.io

    def spy(lba, nbytes, **kwargs):
        fetches.append((lba, nbytes))
        return inner_io(lba, nbytes, **kwargs)

    backend.inner.io = spy

    def proc():
        yield from backend.io(0, 4096)          # line 0 resident
        yield from backend.io(0, 4 * 4096)      # lines 0..3: partial

    env.run(env.process(proc()))
    assert fetches == [(0, 4096), (8, 3 * 4096)]
    assert backend.cache.hits == 1
    assert backend.cache.misses == 4


def test_backend_write_through_fills_cache():
    platform, backend = _gpu_cached()
    env = platform.env

    def proc():
        yield from backend.io(0, 4096, is_write=True)
        cqe = yield from backend.io(0, 4096)
        return cqe

    cqe = env.run(env.process(proc()))
    assert isinstance(cqe, GpuCacheCompletion)  # read-after-write hit
    assert backend.cache.fills == 1


def test_backend_speculation_rides_cam_async_path():
    platform, backend = _gpu_cached(
        inner="cam", lines=32,
        readahead=ReadaheadConfig(depth=2, min_run=2, probation=64),
    )
    env = platform.env

    def proc():
        for line in range(4):                   # sequential scan
            yield from backend.io(line * 8, 4096)
        yield env.timeout(1e-3)                 # let speculation land

    env.run(env.process(proc()))
    cache = backend.cache
    assert cache.readahead_issued > 0
    assert cache.resident_lines > 4             # speculative lines landed
    assert backend.name == "cam+gpucache"


# --- serving + graph integration --------------------------------------------

def test_serving_cache_off_is_bit_identical_to_pre_cache_build():
    from repro.experiments.serving import serve_once

    _, sim_end = serve_once("cam", 100)
    assert sim_end == 0.14012175802083016  # recorded pre-PR constant


def test_serving_gpu_cache_keeps_throughput_and_hits():
    from repro.experiments.serving import serve_once

    off, _ = serve_once("cam", 100)
    on, _ = serve_once("cam", 100, gpu_cache_blocks=2048,
                       readahead=True)
    assert on.tokens_per_s >= off.tokens_per_s
    assert on.turns_done == off.turns_done
    assert on.tokens_done == off.tokens_done


def test_serving_rejects_mismatched_line_size():
    from repro.serving import (
        KvBlockStore, KvLayout, ServingEngine, SessionConfig, SessionPool,
    )

    platform = _platform()
    backend = make_backend("cam", platform)
    store = KvBlockStore(platform, KvLayout(), capacity_blocks=16)
    pool = SessionPool(SessionConfig(num_sessions=1))
    cache = GpuCache(platform, capacity_bytes=1 << 20, line_bytes=4096)
    with pytest.raises(ConfigurationError):
        ServingEngine(platform, backend, store, pool, gpu_cache=cache)


def test_graph_cache_modes_and_gate():
    from repro.experiments.gpucache import graph_cache_once

    off, _ = graph_cache_once("off", num_batches=3)
    cached, _ = graph_cache_once("cache", num_batches=3)
    assert cached["hit_rate"] > 0.1       # hub reuse absorbed
    assert cached["bytes_per_s"] > off["bytes_per_s"]
    with pytest.raises(ConfigurationError):
        graph_cache_once("bogus")


def test_gpucache_experiment_quick():
    from repro.experiments.gpucache import run_gpucache

    result = run_gpucache(quick=True)
    assert result.exp_id == "gpucache"
    assert len(result.tables) == 2
    modes = [row[0] for row in result.tables[0].rows]
    assert modes == ["off", "cache", "cache+ra"]
