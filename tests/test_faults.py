"""Failure-injection tests: device errors propagate through every plane."""

import numpy as np
import pytest

from repro.backends import make_backend
from repro.config import PlatformConfig
from repro.core import CamContext
from repro.errors import ConfigurationError, DeviceError
from repro.hw.faults import (
    STATUS_MEDIA_ERROR,
    STATUS_WRITE_FAULT,
    FaultInjector,
)
from repro.hw.nvme import SQE, NVMeOpcode
from repro.hw.platform import Platform
from repro.units import KiB


def _platform(num_ssds=2, injector=None, functional=False):
    return Platform(
        PlatformConfig(num_ssds=num_ssds),
        functional=functional,
        fault_injector=injector,
    )


def test_injector_one_shot_semantics():
    injector = FaultInjector()
    injector.inject_lba(0, 100)
    assert injector.check(0, 100, 1, False) == STATUS_MEDIA_ERROR
    # consumed: second attempt succeeds
    assert injector.check(0, 100, 1, False) == 0
    assert injector.faults_delivered == 1


def test_injector_range_overlap_detected():
    injector = FaultInjector()
    injector.inject_lba(0, 10)
    # a command covering blocks [8, 16) hits the planted block
    assert injector.check(0, 8, 8, True) == STATUS_WRITE_FAULT


def test_injector_scoped_to_ssd():
    injector = FaultInjector()
    injector.inject_lba(1, 5)
    assert injector.check(0, 5, 1, False) == 0
    assert injector.check(1, 5, 1, False) == STATUS_MEDIA_ERROR


def test_injector_rate_validation():
    with pytest.raises(ConfigurationError):
        FaultInjector(error_rate=1.5)


def test_injector_probabilistic_rate():
    injector = FaultInjector(error_rate=0.5, seed=9)
    outcomes = [injector.check(0, i, 1, False) != 0 for i in range(400)]
    assert 0.35 < np.mean(outcomes) < 0.65


def test_device_posts_error_cqe():
    injector = FaultInjector()
    injector.inject_lba(0, 0)
    platform = _platform(injector=injector)
    ssd = platform.ssds[0]
    qp = ssd.create_queue_pair()

    def proc():
        yield qp.submit(SQE(NVMeOpcode.READ, lba=0, num_blocks=8))
        cqe = yield qp.pop_completion()
        return cqe

    cqe = platform.env.run(platform.env.process(proc()))
    assert not cqe.ok
    assert cqe.status == STATUS_MEDIA_ERROR
    assert ssd.faults_reported == 1


def test_flush_command_completes():
    platform = _platform()
    qp = platform.ssds[0].create_queue_pair()

    def proc():
        yield qp.submit(SQE(NVMeOpcode.FLUSH, lba=0, num_blocks=0))
        cqe = yield qp.pop_completion()
        return cqe

    assert platform.env.run(platform.env.process(proc())).ok


def test_posix_raises_like_failed_pread():
    injector = FaultInjector()
    injector.inject_lba(0, 0)
    platform = _platform(injector=injector)
    backend = make_backend("posix", platform)

    def proc():
        yield from backend.io(0, 4096)

    with pytest.raises(DeviceError, match="status"):
        platform.env.run(platform.env.process(proc()))


def test_spdk_returns_error_cqe():
    injector = FaultInjector()
    injector.inject_lba(0, 0)
    platform = _platform(injector=injector)
    backend = make_backend("spdk", platform, to_gpu=False)

    def proc():
        cqe = yield from backend.io(0, 4096)
        return cqe

    cqe = platform.env.run(platform.env.process(proc()))
    assert not cqe.ok


def test_cam_synchronize_raises_on_failed_batch():
    injector = FaultInjector()
    platform = _platform(num_ssds=2, injector=injector)
    context = CamContext(platform)
    buffer = context.alloc(64 * KiB)
    api = context.device_api()
    lbas = np.arange(8, dtype=np.int64) * 8
    # plant a fault on one request of the batch (global lba 16 -> stripe 2
    # -> ssd 0, local lba 8)
    ssd, local = platform.ssd_for_lba(16)
    injector.inject_lba(ssd.ssd_id, local)

    def kernel():
        yield from api.prefetch(lbas, buffer, 4096)
        with pytest.raises(DeviceError, match="1 of 8 requests failed"):
            yield from api.prefetch_synchronize()

    platform.env.run(platform.env.process(kernel()))


def test_cam_survives_failed_batch_and_continues():
    """After a failed batch the context keeps working for later batches."""
    injector = FaultInjector()
    platform = _platform(num_ssds=2, injector=injector)
    context = CamContext(platform)
    buffer = context.alloc(64 * KiB)
    api = context.device_api()
    lbas = np.arange(4, dtype=np.int64) * 8
    ssd, local = platform.ssd_for_lba(0)
    injector.inject_lba(ssd.ssd_id, local)

    def kernel():
        yield from api.prefetch(lbas, buffer, 4096)
        with pytest.raises(DeviceError):
            yield from api.prefetch_synchronize()
        # retry: the fault was one-shot, this batch succeeds
        yield from api.prefetch(lbas, buffer, 4096)
        yield from api.prefetch_synchronize()

    platform.env.run(platform.env.process(kernel()))
    assert context.manager.batches_done.total == 2


def test_degrade_window_is_start_inclusive_end_exclusive():
    injector = FaultInjector()
    injector.degrade(0, factor=3.0, start=1.0, duration=2.0)
    assert injector.latency_factor(0, 0.999) == 1.0
    assert injector.latency_factor(0, 1.0) == 3.0
    assert injector.latency_factor(0, 2.999) == 3.0
    assert injector.latency_factor(0, 3.0) == 1.0
    # scoped to the SSD, and overlapping windows stack
    assert injector.latency_factor(1, 1.5) == 1.0
    injector.degrade(0, factor=2.0, start=2.0, duration=2.0)
    assert injector.latency_factor(0, 2.5) == 6.0


def test_repair_lba_clears_persistent_faults():
    injector = FaultInjector()
    injector.inject_lba(0, 42, persistent=True)
    # persistent: the fault survives being hit
    assert injector.check(0, 42, 1, False) == STATUS_MEDIA_ERROR
    assert injector.check(0, 42, 1, False) == STATUS_MEDIA_ERROR
    injector.repair_lba(0, 42)
    assert injector.check(0, 42, 1, False) == 0
    # repair also cancels a planted one-shot before it fires
    injector.inject_lba(0, 43)
    injector.repair_lba(0, 43)
    assert injector.check(0, 43, 1, False) == 0


def test_offline_revive_waits_out_the_open_breaker():
    """Reviving the device does not instantly close its breaker: the
    cooldown still applies, then one half-open trial re-admits it."""
    from repro.reliability.health import HealthState, HealthTracker
    from repro.sim.core import Environment

    env = Environment()
    injector = FaultInjector()
    health = HealthTracker(env, num_ssds=1)

    injector.set_offline(0)
    assert injector.is_offline(0)
    health.mark_offline(0)
    assert not health.allow(0)

    injector.set_offline(0, False)
    assert not injector.is_offline(0)
    # the breaker stays open until the cooldown elapses
    assert not health.allow(0)
    env.run(env.timeout(health.breaker_cooldown))
    # half-open: exactly one trial goes through, a second is refused
    assert health.allow(0)
    assert not health.allow(0)
    health.record_success(0)
    assert health.state(0) is HealthState.HEALTHY
    assert health.allow(0)


def test_fault_free_runs_unaffected_by_injector_presence():
    injector = FaultInjector()  # nothing planted, rate 0
    platform = _platform(injector=injector)
    backend = make_backend("spdk", platform, to_gpu=False)

    def proc():
        cqe = yield from backend.io(0, 4096)
        return cqe

    assert platform.env.run(platform.env.process(proc())).ok
    assert injector.faults_delivered == 0
