"""Dynamic adjustment of CAM's manager-core count (Challenge 1).

Paper Section III-A: "CAM records both computation and I/O times.  CAM
adjusts the number of cores for CPU-based SSD control according to the
relative time of computation and I/O in the last batch" — using between
N/4 and N/2 cores for N SSDs.

The decision logic lives in
:class:`~repro.core.elastic.ElasticCorePolicy`; this module is the
*advisor* front-end that folds per-batch (compute, I/O) time pairs into
the policy's scalar pressure signal — the I/O share of the batch,
``io / (compute + io)``.  The closed-loop controller
(:class:`~repro.core.elastic.ElasticController`) feeds the same policy
reactor busy fractions instead; advisor and controller are the same
decision function under two different sensors.

The historical threshold knobs are preserved exactly: the old rule
"shrink when ``io < compute * shrink_threshold``" is the pressure band
``io/(compute+io) < shrink_threshold/(1+shrink_threshold)`` (and
likewise for grow), so observation sequences decide identically to the
pre-refactor advisor.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple

from repro.config import CAMConfig
from repro.core.elastic import CoreDecision, ElasticCorePolicy
from repro.errors import ConfigurationError


@dataclass
class CoreAutotuner:
    """Chooses how many manager cores CAM should run."""

    num_ssds: int
    config: Optional[CAMConfig] = None
    #: don't shrink unless I/O finishes in this fraction of compute time
    shrink_threshold: float = 0.85
    #: grow as soon as I/O exceeds compute by this factor
    grow_threshold: float = 1.0
    #: cap on retained observations — long-running serving sims feed the
    #: advisor every batch forever, so the log must be bounded
    history_limit: int = 4096
    history: Deque[Tuple[float, float, int]] = field(init=False)

    def __post_init__(self):
        if self.num_ssds < 1:
            raise ConfigurationError("need at least one SSD")
        if self.shrink_threshold < 0 or self.grow_threshold < 0:
            raise ConfigurationError("thresholds must be non-negative")
        if self.shrink_threshold > self.grow_threshold:
            raise ConfigurationError(
                "shrink_threshold must not exceed grow_threshold "
                f"({self.shrink_threshold} > {self.grow_threshold})"
            )
        if self.history_limit < 1:
            raise ConfigurationError("history_limit must be >= 1")
        config = self.config or CAMConfig()
        self.min_cores = max(
            1, math.ceil(self.num_ssds * config.min_cores_per_ssd)
        )
        self.max_cores = max(
            self.min_cores,
            math.ceil(self.num_ssds * config.max_cores_per_ssd),
        )
        #: start at the maximum (safe) allocation, shrink when possible
        self.cores = self.max_cores
        self.history = deque(maxlen=self.history_limit)
        # io < compute * t  <=>  io/(io+compute) < t/(1+t): same bands,
        # expressed on the policy's [0, 1] pressure axis
        self.policy = ElasticCorePolicy(
            num_ssds=self.num_ssds,
            min_cores_per_ssd=config.min_cores_per_ssd,
            max_cores_per_ssd=config.max_cores_per_ssd,
            low_water=self.shrink_threshold / (1 + self.shrink_threshold),
            high_water=self.grow_threshold / (1 + self.grow_threshold),
            cooldown=0.0,
        )

    def observe(self, compute_time: float, io_time: float) -> int:
        """Feed the last batch's times; returns the new core count."""
        if compute_time < 0 or io_time < 0:
            raise ConfigurationError("times must be non-negative")
        self.history.append((compute_time, io_time, self.cores))
        self.cores = self.decide(compute_time, io_time).cores
        return self.cores

    def decide(self, compute_time: float, io_time: float) -> CoreDecision:
        """The policy's verdict for one batch, without applying it."""
        total = compute_time + io_time
        pressure = io_time / total if total > 0 else None
        # min/max may have been tightened after construction (CamContext
        # clamps to the physical reactor pool), so pass them explicitly
        return self.policy.decide(
            pressure=pressure,
            cores=self.cores,
            min_cores=self.min_cores,
            max_cores=self.max_cores,
        )

    @property
    def bounds(self) -> Tuple[int, int]:
        return (self.min_cores, self.max_cores)
