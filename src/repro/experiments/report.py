"""Plain-text tables and experiment results.

The harness prints the same rows/series the paper's figures plot; a
:class:`Table` is one panel (one figure axis or one table), and an
:class:`ExperimentResult` bundles a figure's panels with the reproduction
notes recorded into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.errors import ConfigurationError


def format_value(value: Any) -> str:
    """Consistent cell formatting: 3 significant-ish digits for floats."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """One panel: a header row plus data rows."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        """All values of one column (for assertions in tests)."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise ConfigurationError(
                f"no column {name!r} in {list(self.columns)}"
            )
        return [row[index] for row in self.rows]

    def render(self) -> str:
        cells = [list(self.columns)] + [
            [format_value(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells)
            for i in range(len(self.columns))
        ]
        lines = [self.title, "-" * len(self.title)]
        for index, row in enumerate(cells):
            lines.append(
                "  ".join(cell.ljust(width)
                          for cell, width in zip(row, widths)).rstrip()
            )
            if index == 0:
                lines.append("  ".join("=" * width for width in widths))
        return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    exp_id: str
    title: str
    tables: List[Table] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: the paper's qualitative expectation, for EXPERIMENTS.md
    paper_expectation: str = ""
    #: per-scenario extras (metrics snapshots, flight-bundle paths)
    #: keyed by scenario name; empty for experiments without telemetry
    scenario_details: dict = field(default_factory=dict)

    def table(self, title: str) -> Table:
        for tab in self.tables:
            if tab.title == title:
                return tab
        raise ConfigurationError(f"no table {title!r} in {self.exp_id}")

    def add_table(self, table: Table) -> Table:
        self.tables.append(table)
        return table

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        header = f"=== {self.exp_id}: {self.title} ==="
        parts = [header]
        if self.paper_expectation:
            parts.append(f"paper expects: {self.paper_expectation}")
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)
