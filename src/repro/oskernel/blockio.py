"""Block I/O layer: the kernel's request queue in front of each NVMe SSD.

Owns one kernel queue pair per SSD and a completion dispatcher that
matches CQEs back to per-request events.  The dispatcher also charges the
completion-side CPU cost (interrupt delivery or completion polling,
depending on the stack's mode).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.errors import SimulationError
from repro.hw.nvme import CQE, SQE
from repro.hw.ssd import SSD
from repro.sim.core import Environment, Event
from repro.sim.stats import Counter


class CompletionGroup:
    """A shared completion counter for a coalesced submission group.

    Instead of one waiter :class:`~repro.sim.core.Event` per command, a
    batched submitter registers many command ids against one group; the
    group's single ``event`` fires — with the ``command_id -> CQE``
    mapping as its value — once the group is *sealed* (no more commands
    will be added) and every expected CQE has been dispatched.  The event
    fires at exactly the simulated instant the *last* per-command waiter
    would have fired, so batch timings match the fan-out path.

    A group may instead carry a ``sink`` callable: each CQE is then
    handed to ``sink(cqe)`` the instant it arrives and the group's event
    never fires.  Reliability-aware submitters use this to peel failed
    commands off the group (for retries) without delaying the rest.
    """

    __slots__ = ("event", "results", "remaining", "sealed", "sink")

    def __init__(self, env: Environment):
        self.event = env.event()
        #: command_id -> CQE, filled as completions are dispatched
        self.results: Dict[int, CQE] = {}
        self.remaining = 0
        self.sealed = False
        #: per-CQE callback; when set, results/event are bypassed
        self.sink: Optional[Callable[[CQE], None]] = None


class CompletionDispatcher:
    """Pops CQEs off one queue pair and wakes the matching waiter.

    ``completion_cost`` seconds of CPU time are charged per completion
    (IRQ + softirq for interrupt mode, poll-loop share for poll mode).
    """

    def __init__(
        self,
        env: Environment,
        queue_pair,
        completion_cost: float = 0.0,
        cpu=None,
        on_complete: Optional[Callable[[CQE], None]] = None,
    ):
        self.env = env
        self.qp = queue_pair
        self.completion_cost = completion_cost
        #: optional CPU resource the completion cost contends on — the
        #: interrupt lands on the same core that submits, so single-thread
        #: stacks serialize completion handling with submission work.
        self.cpu = cpu
        self.on_complete = on_complete
        self._waiters: Dict[int, Event] = {}
        #: command_id -> CompletionGroup for batched submitters
        self._groups: Dict[int, CompletionGroup] = {}
        self.completions = Counter(env)
        if completion_cost == 0.0 and cpu is None and on_complete is None:
            # No completion-side CPU is charged, so a grouped CQE can be
            # folded into its group the instant the device posts it — same
            # simulated time, one fewer ring hop.  Per-command waiters
            # still flow through the ring (the sink declines them).
            queue_pair.completion_sink = self._absorb_grouped
        env.process(self._run())

    def _absorb_grouped(self, cqe: CQE) -> bool:
        """Queue-pair sink: fold a grouped CQE directly, skip the CQ ring."""
        group = self._groups.pop(cqe.command_id, None)
        if group is None:
            return False
        self.completions.add()
        group.remaining -= 1
        if group.sink is not None:
            group.sink(cqe)
            return True
        group.results[cqe.command_id] = cqe
        if group.sealed and group.remaining == 0:
            group.event.succeed(group.results)
        return True

    def register(self, command_id: int) -> Event:
        """Create the event a submitter waits on for ``command_id``."""
        if command_id in self._waiters or command_id in self._groups:
            raise SimulationError(f"duplicate command id {command_id}")
        event = self.env.event()
        self._waiters[command_id] = event
        return event

    # -- coalesced (group) completion --------------------------------------
    def open_group(self) -> CompletionGroup:
        """Start a completion group for a coalesced submission."""
        return CompletionGroup(self.env)

    def expect(self, group: CompletionGroup, command_id: int) -> None:
        """Add ``command_id`` to ``group`` instead of a per-command waiter."""
        if group.sealed:
            raise SimulationError("cannot expect() on a sealed group")
        if command_id in self._waiters or command_id in self._groups:
            raise SimulationError(f"duplicate command id {command_id}")
        self._groups[command_id] = group
        group.remaining += 1

    def seal(self, group: CompletionGroup) -> None:
        """No more commands will join; fire once all expected CQEs arrive."""
        group.sealed = True
        if (
            group.sink is None
            and group.remaining == 0
            and not group.event.triggered
        ):
            group.event.succeed(group.results)

    def _run(self) -> Generator:
        while True:
            cqe = yield self.qp.pop_completion()
            if self.completion_cost:
                if self.cpu is not None:
                    with self.cpu.request() as core:
                        yield core
                        yield self.env.timeout(self.completion_cost)
                else:
                    yield self.env.timeout(self.completion_cost)
            self.completions.add()
            if self.on_complete is not None:
                self.on_complete(cqe)
            group = self._groups.pop(cqe.command_id, None)
            if group is not None:
                group.remaining -= 1
                if group.sink is not None:
                    group.sink(cqe)
                    continue
                group.results[cqe.command_id] = cqe
                if group.sealed and group.remaining == 0:
                    group.event.succeed(group.results)
                continue
            waiter = self._waiters.pop(cqe.command_id, None)
            if waiter is not None:
                waiter.succeed(cqe)


class BlockLayer:
    """Kernel request queues: one queue pair (+ dispatcher) per SSD."""

    def __init__(
        self,
        env: Environment,
        ssds,
        completion_cost: float = 0.0,
        queue_depth: Optional[int] = None,
        cpu=None,
    ):
        self.env = env
        self.ssds = list(ssds)
        if not self.ssds:
            raise SimulationError("block layer needs at least one SSD")
        self._qps = [ssd.create_queue_pair(queue_depth) for ssd in self.ssds]
        self._dispatchers = [
            CompletionDispatcher(env, qp, completion_cost, cpu=cpu)
            for qp in self._qps
        ]
        self.requests_submitted = Counter(env)

    def submit_and_wait(
        self,
        ssd_index: int,
        sqe: SQE,
        watchdog=None,
        fault_injector=None,
    ) -> Generator:
        """Process: dispatch ``sqe`` to SSD ``ssd_index``, wait for the CQE.

        With a :class:`~repro.reliability.CompletionWatchdog` the wait is
        deadline-bounded and raises a typed timeout instead of hanging on
        a device that never answers.
        """
        if not 0 <= ssd_index < len(self.ssds):
            raise SimulationError(f"no SSD {ssd_index}")
        qp = self._qps[ssd_index]
        dispatcher = self._dispatchers[ssd_index]
        done = dispatcher.register(sqe.command_id)
        self.requests_submitted.add()
        yield qp.submit(sqe)
        if watchdog is not None:
            ssd = self.ssds[ssd_index]
            cqe = yield from watchdog.guard(
                done,
                nbytes=sqe.nbytes(ssd.config.block_size),
                ssd_ids=(ssd_index,),
                fault_injector=fault_injector,
                description=f"blockio ssd {ssd_index} lba {sqe.lba}",
            )
        else:
            cqe = yield done
        return cqe

    def queue_pair(self, ssd_index: int):
        return self._qps[ssd_index]
