"""Uniform storage-backend facade.

Workloads and experiments talk to one interface —
:class:`~repro.backends.base.StorageBackend` — and pick a control plane by
name.  Construction is centralized in :func:`make_backend` so an
experiment that compares CAM against four baselines is a loop over names.
"""

from repro.backends.base import (
    StorageBackend,
    make_backend,
    measure_throughput,
)
from repro.backends.cache import CacheCompletion, CachedBackend
from repro.backends.planes import (
    BamBackend,
    CamBackend,
    GdsBackend,
    KernelBackend,
    SpdkBackend,
)
__all__ = [
    "BamBackend",
    "CacheCompletion",
    "CachedBackend",
    "CamBackend",
    "GdsBackend",
    "KernelBackend",
    "ReplicatedBackend",
    "SpdkBackend",
    "StorageBackend",
    "make_backend",
    "measure_throughput",
]


def __getattr__(name):
    # lazy: repro.reliability.replica itself imports repro.backends.base
    if name == "ReplicatedBackend":
        from repro.reliability.replica import ReplicatedBackend

        return ReplicatedBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
