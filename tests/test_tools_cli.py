"""Tests for the CLI entry points and the model's explain()."""

import pytest

from repro.config import PlatformConfig
from repro.errors import ConfigurationError
from repro.model.throughput import ThroughputModel
from repro.tools.capacity import main as capacity_main
from repro.experiments.run_all import main as run_all_main
from repro.units import KiB, gb_per_s


# --- explain() -------------------------------------------------------------

MODEL = ThroughputModel(PlatformConfig())


def test_explain_achieved_matches_throughput():
    for backend in ("cam", "spdk", "posix", "bam", "gds"):
        explained = MODEL.explain(backend, 4 * KiB, False)
        direct = MODEL.throughput(backend, 4 * KiB, False)
        assert explained["achieved"] == pytest.approx(direct), backend


def test_explain_identifies_dram_bottleneck():
    explained = MODEL.explain("spdk", 128 * KiB, False, dram_channels=2)
    assert explained["bottleneck"] == "dram (2 crossings)"
    assert explained["achieved"] == pytest.approx(gb_per_s(10.0))


def test_explain_identifies_copy_engine_bottleneck():
    explained = MODEL.explain("spdk", 4 * KiB, False,
                              contiguous_dest=False)
    assert explained["bottleneck"] == "copy engine"


def test_explain_identifies_control_plane_for_gds():
    explained = MODEL.explain("gds", 128 * KiB, False)
    assert explained["bottleneck"] == "control_plane"


def test_explain_pcie_binds_the_headline_point():
    explained = MODEL.explain("cam", 4 * KiB, False, cores=12)
    assert explained["bottleneck"] in ("pcie", "control_plane")
    assert explained["achieved"] > gb_per_s(18)


def test_explain_unknown_backend():
    with pytest.raises(ConfigurationError):
        MODEL.explain("zfs")


# --- capacity CLI ------------------------------------------------------------

def test_capacity_cli_basic(capsys):
    assert capacity_main(["--backend", "cam"]) == 0
    out = capsys.readouterr().out
    assert "cam: random read at 4.0KiB on 12 SSDs" in out
    assert "GB/s" in out


def test_capacity_cli_explain(capsys):
    assert capacity_main(
        ["--backend", "spdk", "--dram-channels", "2",
         "--granularity", "131072", "--explain"]
    ) == 0
    out = capsys.readouterr().out
    assert "bottleneck" in out
    assert "dram" in out


def test_capacity_cli_write_flag(capsys):
    assert capacity_main(["--backend", "cam", "--write"]) == 0
    assert "random write" in capsys.readouterr().out


def test_capacity_cli_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        capacity_main(["--backend", "zfs"])


# --- run_all CLI ------------------------------------------------------------

def test_run_all_single_experiment(capsys):
    assert run_all_main(["fig04"]) == 0
    out = capsys.readouterr().out
    assert "fig04" in out
    assert "SMs needed for saturation" in out


def test_run_all_rejects_unknown_id():
    with pytest.raises(SystemExit):
        run_all_main(["fig99"])


def test_run_all_accepts_extras_ids(capsys):
    assert run_all_main(["ablation_datapath"]) == 0
    assert "direct (cam)" in capsys.readouterr().out


# --- export CLI --------------------------------------------------------------

def test_export_cli_writes_csv(tmp_path, capsys):
    from repro.tools.export import main as export_main

    assert export_main(["fig04", "--out", str(tmp_path)]) == 0
    files = sorted((tmp_path / "fig04").iterdir())
    names = [f.name for f in files]
    assert "notes.txt" in names
    csv_files = [f for f in files if f.suffix == ".csv"]
    assert csv_files
    header = csv_files[0].read_text().splitlines()[0]
    assert "ssds" in header


def test_export_cli_rejects_unknown(tmp_path):
    from repro.tools.export import main as export_main

    with pytest.raises(SystemExit):
        export_main(["fig99", "--out", str(tmp_path)])


# --- cam-top serving pane ----------------------------------------------------

def _serving_sampler(num_sessions=40, traced=False):
    from repro.backends.base import make_backend
    from repro.hw.platform import Platform
    from repro.obs import MetricsSampler, install_metrics, install_tracer
    from repro.serving import (
        KvBlockStore,
        KvLayout,
        ServingEngine,
        SessionConfig,
        SessionPool,
    )

    platform = Platform(PlatformConfig(num_ssds=4), functional=False)
    if traced:
        install_tracer(platform.env)
    metrics = install_metrics(platform.env)
    backend = make_backend("cam", platform)
    store = KvBlockStore(platform, KvLayout(), capacity_blocks=128)
    pool = SessionPool(
        SessionConfig(num_sessions=num_sessions, seed=17,
                      mean_think_s=5e-3, turns_min=2, turns_max=3)
    )
    sampler = MetricsSampler(metrics, interval=500e-6)
    engine = ServingEngine(platform, backend, store, pool,
                           max_concurrent_decodes=16)
    result = engine.run()
    sampler.stop()
    sampler.sample_now()
    return sampler, result


def test_cam_top_renders_serving_pane():
    from repro.tools.top import render_top

    sampler, result = _serving_sampler()
    screen = render_top(sampler)
    assert "SERVING" in screen
    assert f"turns {result.turns_done:6.0f}" in screen
    assert "ttft p99" in screen
    assert "tokens/s" in screen
    assert "kv hit" in screen
    # all sessions finished by the final sample
    assert "sessions     0" in screen


def test_cam_top_without_serving_has_no_pane():
    from repro.tools.top import render_top, run_demo

    _, _, sampler = run_demo(batches=2, requests=1024)
    screen = render_top(sampler)
    assert "SERVING" not in screen
    # no tracer installed -> no TRACE pane either
    assert "TRACE" not in screen


# --- cam-top trace pane (ISSUE 10) -------------------------------------------

def test_cam_top_renders_trace_pane_when_tracing():
    from repro.tools.top import render_top

    sampler, result = _serving_sampler(num_sessions=20, traced=True)
    screen = render_top(sampler)
    assert "TRACE" in screen
    assert "active contexts" in screen
    assert "exemplars" in screen
    # every turn completed a request context by the final sample
    assert f"completed {result.turns_done:7.0f}" in screen
    # the run finished: no request contexts still open
    assert "active contexts     0" in screen


def test_cam_top_untraced_serving_has_no_trace_pane():
    from repro.tools.top import render_top

    sampler, _ = _serving_sampler(num_sessions=20, traced=False)
    screen = render_top(sampler)
    assert "SERVING" in screen
    assert "TRACE" not in screen


# --- cam-trace CLI (ISSUE 10) ------------------------------------------------

def test_cam_trace_demo_attribution_smoke(capsys, tmp_path):
    from repro.tools.trace_cli import main as trace_main

    out = tmp_path / "flow.json"
    rc = trace_main([
        "--demo", "--sessions", "10", "--slowest", "3",
        "--attribute", "p99", "--export", str(out),
    ])
    assert rc == 0
    screen = capsys.readouterr().out
    assert "cam-trace:" in screen
    assert "completed requests" in screen
    assert "DOMINANT STAGE" in screen
    assert "tail attribution" in screen
    assert "<-- dominant" in screen
    assert out.stat().st_size > 0


def test_cam_trace_requires_a_source(capsys):
    from repro.tools.trace_cli import main as trace_main

    with pytest.raises(SystemExit):
        trace_main([])
