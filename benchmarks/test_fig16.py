"""Benchmark: regenerate Fig. 16 (discontiguous-destination collapse)."""


def test_fig16_granularity(check):
    def verify(result):
        deficits = result.tables[0].column("spdk_deficit_%")
        assert deficits[0] > 90

    check("fig16", verify)
